#include "linalg/kernels.hpp"

#include "common/assert.hpp"

namespace plos::linalg::kernels {

// The three reductions share one shape: 4 accumulators over stride-4
// blocks, scalar tail appended to acc0, tree fold (acc0+acc1)+(acc2+acc3).
// Keeping the tail on acc0 (not a fifth accumulator) makes dims 1-3 reduce
// to the plain serial sum, so tiny vectors cost nothing extra.

double blocked_dot(std::span<const double> a, std::span<const double> b) {
  PLOS_CHECK(a.size() == b.size(), "blocked_dot: size mismatch");
  const std::size_t n = a.size();
  const std::size_t blocked = n - n % 4;
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  for (std::size_t i = 0; i < blocked; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (std::size_t i = blocked; i < n; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

double blocked_squared_norm(std::span<const double> a) {
  const std::size_t n = a.size();
  const std::size_t blocked = n - n % 4;
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  for (std::size_t i = 0; i < blocked; i += 4) {
    acc0 += a[i] * a[i];
    acc1 += a[i + 1] * a[i + 1];
    acc2 += a[i + 2] * a[i + 2];
    acc3 += a[i + 3] * a[i + 3];
  }
  for (std::size_t i = blocked; i < n; ++i) acc0 += a[i] * a[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

double blocked_squared_distance(std::span<const double> a,
                                std::span<const double> b) {
  PLOS_CHECK(a.size() == b.size(), "blocked_squared_distance: size mismatch");
  const std::size_t n = a.size();
  const std::size_t blocked = n - n % 4;
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  for (std::size_t i = 0; i < blocked; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (std::size_t i = blocked; i < n; ++i) {
    const double d = a[i] - b[i];
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

void blocked_axpy(double alpha, std::span<const double> x,
                  std::span<double> y) {
  PLOS_CHECK(x.size() == y.size(), "blocked_axpy: size mismatch");
  const std::size_t n = x.size();
  const std::size_t blocked = n - n % 4;
  for (std::size_t i = 0; i < blocked; i += 4) {
    y[i] += alpha * x[i];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
  }
  for (std::size_t i = blocked; i < n; ++i) y[i] += alpha * x[i];
}

void blocked_rank1_update(std::span<double> a, std::size_t rows,
                          std::size_t cols, double alpha,
                          std::span<const double> x,
                          std::span<const double> y) {
  PLOS_CHECK(a.size() == rows * cols, "blocked_rank1_update: buffer size");
  PLOS_CHECK(x.size() == rows && y.size() == cols,
             "blocked_rank1_update: vector sizes");
  for (std::size_t i = 0; i < rows; ++i) {
    const double scale = alpha * x[i];
    blocked_axpy(scale, y, a.subspan(i * cols, cols));
  }
}

double serial_sum(std::span<const double> a) {
  double s = 0.0;
  for (const double v : a) s += v;
  return s;
}

double serial_gather_sum(std::span<const double> values,
                         std::span<const std::size_t> indices) {
  double s = 0.0;
  for (const std::size_t idx : indices) {
    PLOS_DCHECK(idx < values.size(), "serial_gather_sum: index out of range");
    s += values[idx];
  }
  return s;
}

double serial_off_diagonal_squared_sum(std::span<const double> a,
                                       std::size_t rows, std::size_t cols) {
  PLOS_CHECK(a.size() == rows * cols,
             "serial_off_diagonal_squared_sum: buffer size");
  double s = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (i != j) s += a[i * cols + j] * a[i * cols + j];
    }
  }
  return s;
}

}  // namespace plos::linalg::kernels
