// Dense row-major matrix with level-2/3 kernels.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/vector.hpp"

namespace plos::linalg {

/// Dense row-major matrix of doubles. Invariant: data_.size() == rows_*cols_.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Build from nested initializer-style rows; all rows must share one width.
  static Matrix from_rows(const std::vector<Vector>& rows);

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j);
  double operator()(std::size_t i, std::size_t j) const;

  /// Mutable / const view of row i.
  std::span<double> row(std::size_t i);
  std::span<const double> row(std::size_t i) const;

  /// Copy of column j.
  Vector col(std::size_t j) const;

  std::span<const double> data() const { return data_; }

  /// this * x (matrix-vector product).
  Vector matvec(std::span<const double> x) const;

  /// this^T * x.
  Vector matvec_transposed(std::span<const double> x) const;

  /// this * other (matrix-matrix product).
  Matrix matmul(const Matrix& other) const;

  Matrix transposed() const;

  /// A A^T — Gram matrix of the rows (symmetric, rows x rows).
  Matrix row_gram() const;

  /// Frobenius-norm comparison against `other` within tol.
  bool approx_equal(const Matrix& other, double tol) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vector data_;
};

}  // namespace plos::linalg
