#include "linalg/matrix.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace plos::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  PLOS_CHECK(!rows.empty(), "from_rows: no rows");
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    PLOS_CHECK(rows[i].size() == m.cols_, "from_rows: ragged rows");
    std::copy(rows[i].begin(), rows[i].end(), m.row(i).begin());
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t i, std::size_t j) {
  PLOS_CHECK(i < rows_ && j < cols_, "Matrix: index out of range");
  return data_[i * cols_ + j];
}

double Matrix::operator()(std::size_t i, std::size_t j) const {
  PLOS_CHECK(i < rows_ && j < cols_, "Matrix: index out of range");
  return data_[i * cols_ + j];
}

std::span<double> Matrix::row(std::size_t i) {
  PLOS_CHECK(i < rows_, "Matrix::row: index out of range");
  return {data_.data() + i * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t i) const {
  PLOS_CHECK(i < rows_, "Matrix::row: index out of range");
  return {data_.data() + i * cols_, cols_};
}

Vector Matrix::col(std::size_t j) const {
  PLOS_CHECK(j < cols_, "Matrix::col: index out of range");
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = data_[i * cols_ + j];
  return out;
}

Vector Matrix::matvec(std::span<const double> x) const {
  PLOS_CHECK(x.size() == cols_, "matvec: size mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = dot(row(i), x);
  return out;
}

Vector Matrix::matvec_transposed(std::span<const double> x) const {
  PLOS_CHECK(x.size() == rows_, "matvec_transposed: size mismatch");
  Vector out(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) axpy(x[i], row(i), out);
  return out;
}

Matrix Matrix::matmul(const Matrix& other) const {
  PLOS_CHECK(cols_ == other.rows_, "matmul: inner dimension mismatch");
  Matrix out(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop contiguous for row-major storage.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      axpy(a, other.row(k), out.row(i));
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = data_[i * cols_ + j];
  }
  return out;
}

Matrix Matrix::row_gram() const {
  Matrix g(rows_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i; j < rows_; ++j) {
      const double v = dot(row(i), row(j));
      g(i, j) = v;
      g(j, i) = v;
    }
  }
  return g;
}

bool Matrix::approx_equal(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace plos::linalg
