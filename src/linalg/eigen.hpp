// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Sized for the spectral-clustering use case (similarity matrices over tens
// to low hundreds of users), where robustness matters more than asymptotics.
#pragma once

#include "linalg/matrix.hpp"

namespace plos::linalg {

struct EigenDecomposition {
  /// Eigenvalues in ascending order.
  Vector values;
  /// eigenvectors.row(k) is the unit eigenvector for values[k].
  Matrix vectors;
};

/// Eigendecomposition of a symmetric matrix. The input is symmetrized as
/// (A + A^T)/2 to absorb round-off asymmetry.
EigenDecomposition symmetric_eigen(const Matrix& a, double tol = 1e-12,
                                   int max_sweeps = 100);

}  // namespace plos::linalg
