// Blocked level-1 kernels with a pinned accumulation order.
//
// Every reduction in this file runs 4 independent accumulator chains over
// stride-4 blocks and folds them with a fixed serial reduction tree
// ((acc0 + acc1) + (acc2 + acc3)), then adds the scalar tail. The order is
// part of the public contract: for identical inputs the returned doubles are
// bitwise identical on every build, compiler, and thread count. The build
// pins -ffp-contract=off so no compiler may fuse a*b+c into an FMA and
// silently change the rounding (see DESIGN.md §13).
//
// Breaking the single serial dependency chain into 4 is also where the
// speed comes from: each chain's add latency overlaps the others', so the
// 120-d/561-d feature dots that dominate the cutting-plane and QP hot paths
// run close to the FPU's throughput limit instead of its latency limit.
#pragma once

#include <cstddef>
#include <span>

namespace plos::linalg::kernels {

/// Blocked inner product <a, b>. Requires a.size() == b.size().
double blocked_dot(std::span<const double> a, std::span<const double> b);

/// Blocked ||a||^2 (dot of a with itself, same accumulation order).
double blocked_squared_norm(std::span<const double> a);

/// Blocked ||a - b||^2. Requires equal sizes.
double blocked_squared_distance(std::span<const double> a,
                                std::span<const double> b);

/// y += alpha * x, unrolled by 4. Element-wise (no cross-element
/// accumulation), so the result is exactly the naive loop's.
void blocked_axpy(double alpha, std::span<const double> x,
                  std::span<double> y);

/// Rank-1 update of a row-major rows x cols buffer: A += alpha * x * y^T.
/// Requires a.size() == rows * cols, x.size() == rows, y.size() == cols.
/// Each element receives exactly one fused-free `a + alpha*x_i*y_j`, so the
/// result is independent of the internal unroll factor.
void blocked_rank1_update(std::span<double> a, std::size_t rows,
                          std::size_t cols, double alpha,
                          std::span<const double> x,
                          std::span<const double> y);

// ---- serial pinned-order folds -------------------------------------------
//
// Not every reduction may use the blocked 4-chain order: folds whose
// historical order is baked into golden manifests, exact benchmark
// counters, or algorithmic post-conditions (the capped-simplex projection's
// "same left-to-right sum the feasibility check uses" idempotence argument)
// must keep the strict serial left-to-right chain. These primitives pin
// that order here, so the accumulation-order lint rule can demand that
// *every* loop-carried double fold routes through linalg::kernels: callers
// pick blocked (fast, 4-chain) or serial (exact historical order), and
// either way the fold order is owned by this one file.

/// Strict left-to-right sum: ((a0 + a1) + a2) + ...
double serial_sum(std::span<const double> a);

/// Strict left-to-right sum of values[indices[k]]. Indices must be in
/// range; duplicates are summed as many times as they appear.
double serial_gather_sum(std::span<const double> values,
                         std::span<const std::size_t> indices);

/// Strict row-major sum of a(i,j)^2 over i != j for a rows x cols
/// row-major buffer (a.size() == rows * cols). The Jacobi eigen sweep's
/// convergence measure — kept serial so its iteration counts never move.
double serial_off_diagonal_squared_sum(std::span<const double> a,
                                       std::size_t rows, std::size_t cols);

}  // namespace plos::linalg::kernels
