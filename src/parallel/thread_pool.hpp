// Fixed-size thread pool powering the trainers' per-user parallelism.
//
// Design constraints, in priority order:
//
//   1. Determinism. `parallel_for(n, body)` splits [0, n) into at most
//      num_threads() contiguous chunks with a fixed index→chunk map that
//      depends only on (n, num_threads()); within a chunk indices run in
//      ascending order. Callers that write per-index outputs (the dominant
//      pattern: one cutting plane per user, one local ADMM solve per
//      device) therefore produce bitwise-identical results for any thread
//      count, including 1.
//   2. Simplicity over peak throughput. No work stealing, one shared FIFO
//      task queue guarded by a mutex. The units of work here (an SVM fit, a
//      per-device prox-QP, a d-dimensional dot-product batch) are large
//      enough that queue contention is irrelevant.
//   3. Exceptions propagate. The first failing chunk (lowest chunk index)
//      has its exception rethrown on the calling thread after all chunks
//      finish; `submit` transports exceptions through the returned future.
//   4. No nested deadlock. Calling `parallel_for` or waiting on a `submit`
//      from inside one of the pool's own workers would starve the queue, so
//      both detect that case and execute inline on the calling worker.
//
// A pool with num_threads() == 1 spawns no workers at all: every call runs
// inline on the caller, which is the legacy serial path byte for byte.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace plos::parallel {

/// Resolves the user-facing `num_threads` knob: 0 means "all hardware
/// threads" (at least 1), any positive value is taken literally (values
/// above the hardware count are allowed and simply timeshare).
std::size_t resolve_num_threads(int requested);

class ThreadPool {
 public:
  /// `num_threads` follows resolve_num_threads(); the pool spawns
  /// num_threads() - 1 workers because the thread calling parallel_for
  /// always executes chunk 0 itself.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// Runs body(i) for every i in [0, n) exactly once and returns when all
  /// calls completed. Chunk k (k < min(num_threads, n)) covers the
  /// half-open range [k·n/chunks, (k+1)·n/chunks), ascending within the
  /// chunk. Rethrows the lowest-chunk exception, if any. Reentrant: may be
  /// called concurrently from several non-worker threads, and calls from a
  /// worker of this pool degrade to an inline serial loop.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// Enqueues one task; the future carries completion and any exception.
  /// Called from a worker of this pool, the task runs inline immediately
  /// (waiting on the future from inside a worker must not deadlock).
  std::future<void> submit(std::function<void()> task);

 private:
  void worker_loop();

  std::size_t num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace plos::parallel
