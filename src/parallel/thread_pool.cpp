#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/profile.hpp"

namespace plos::parallel {

namespace {

// Set for the lifetime of a worker thread; parallel_for/submit consult it
// to detect re-entry from the owning pool's own workers.
thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

std::size_t resolve_num_threads(int requested) {
  PLOS_CHECK(requested >= 0, "resolve_num_threads: negative thread count");
  if (requested > 0) return static_cast<std::size_t>(requested);
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(resolve_num_threads(num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (std::size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Serial pool, tiny range, or re-entry from one of our own workers (the
  // worker executing the outer task cannot also drain the queue): run
  // inline. The chunk→index map below degenerates to the same ascending
  // order, so this changes nothing observable but the thread count.
  if (workers_.empty() || n == 1 || current_pool == this) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  const std::size_t chunks = std::min(num_threads_, n);
  std::vector<std::exception_ptr> errors(chunks);
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t pending = chunks - 1;

  const auto run_chunk = [&](std::size_t k) {
    const std::size_t begin = k * n / chunks;
    const std::size_t end = (k + 1) * n / chunks;
    try {
      for (std::size_t i = begin; i < end; ++i) body(i);
    } catch (...) {
      errors[k] = std::current_exception();
    }
  };

  // Workers inherit the caller's profile position so spans opened inside
  // body() nest identically at every thread count (chunk 0 runs on the
  // caller, whose thread-local context is already correct).
  const obs::ProfileContext profile_parent = obs::profile_context();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t k = 1; k < chunks; ++k) {
      queue_.emplace_back([&, k] {
        {
          const obs::ProfileContextScope profile_scope(profile_parent);
          run_chunk(k);
        }
        // Notify under the lock: the caller cannot finish its wait (and
        // destroy done_cv) until this thread released done_mutex, which
        // makes the notify safe against caller-stack teardown.
        const std::lock_guard<std::mutex> done_lock(done_mutex);
        --pending;
        done_cv.notify_one();
      });
    }
  }
  cv_.notify_all();

  run_chunk(0);  // the calling thread is worker 0
  {
    std::unique_lock<std::mutex> done_lock(done_mutex);
    done_cv.wait(done_lock, [&] { return pending == 0; });
  }
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  if (workers_.empty() || current_pool == this) {
    (*packaged)();
    return future;
  }
  {
    const obs::ProfileContext profile_parent = obs::profile_context();
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.emplace_back([packaged, profile_parent] {
      const obs::ProfileContextScope profile_scope(profile_parent);
      (*packaged)();
    });
  }
  cv_.notify_one();
  return future;
}

}  // namespace plos::parallel
