// Random-hyperplane locality-sensitive hashing (Charikar, STOC 2002) and the
// generalized-Jaccard histogram similarity the paper's Group baseline uses
// to compare users without exchanging raw samples.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "rng/engine.hpp"

namespace plos::cluster {

/// Hashes d-dimensional points into 2^num_bits buckets by the sign pattern
/// of num_bits random Gaussian hyperplanes through the origin.
class RandomHyperplaneHasher {
 public:
  /// num_bits in [1, 30]; the paper uses 128 buckets (7 bits).
  RandomHyperplaneHasher(std::size_t dim, std::size_t num_bits,
                         rng::Engine& engine);

  std::size_t num_buckets() const { return std::size_t{1} << num_bits_; }
  std::size_t dim() const { return dim_; }

  /// Bucket index of a single point.
  std::size_t bucket(std::span<const double> x) const;

  /// Normalized bucket-frequency histogram of a point set (sums to 1).
  linalg::Vector histogram(const std::vector<linalg::Vector>& points) const;

 private:
  std::size_t dim_;
  std::size_t num_bits_;
  std::vector<linalg::Vector> hyperplanes_;
};

/// Generalized Jaccard similarity Σ_i min(a_i, b_i) / Σ_i max(a_i, b_i)
/// between non-negative histograms. Returns 1 when both are all-zero.
double generalized_jaccard(std::span<const double> a,
                           std::span<const double> b);

}  // namespace plos::cluster
