// Normalized spectral clustering (Ng-Jordan-Weiss) on a user-similarity
// matrix, built on the in-house Jacobi eigensolver and k-means.
//
// The Group baseline clusters users by the generalized-Jaccard similarity of
// their LSH histograms, then trains one model per user group.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "rng/engine.hpp"

namespace plos::cluster {

/// Clusters the n entities described by a symmetric non-negative similarity
/// matrix into k groups. Returns a cluster index per entity.
///
/// Pipeline: L_sym = I − D^{-1/2} W D^{-1/2}; take the k eigenvectors of the
/// smallest eigenvalues; row-normalize the spectral embedding; k-means.
std::vector<std::size_t> spectral_clustering(const linalg::Matrix& similarity,
                                             std::size_t k,
                                             rng::Engine& engine);

}  // namespace plos::cluster
