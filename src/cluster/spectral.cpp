#include "cluster/spectral.hpp"

#include <cmath>

#include "cluster/kmeans.hpp"
#include "common/assert.hpp"
#include "linalg/eigen.hpp"

namespace plos::cluster {

std::vector<std::size_t> spectral_clustering(const linalg::Matrix& similarity,
                                             std::size_t k,
                                             rng::Engine& engine) {
  const std::size_t n = similarity.rows();
  PLOS_CHECK(similarity.cols() == n && n > 0,
             "spectral_clustering: similarity must be square and non-empty");
  PLOS_CHECK(k >= 1 && k <= n, "spectral_clustering: invalid k");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      PLOS_CHECK(similarity(i, j) >= 0.0,
                 "spectral_clustering: similarities must be non-negative");
    }
  }

  // Symmetric normalized Laplacian L = I - D^{-1/2} W D^{-1/2}.
  linalg::Vector inv_sqrt_degree(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double d = 0.0;
    for (std::size_t j = 0; j < n; ++j) d += similarity(i, j);
    inv_sqrt_degree[i] = d > 0.0 ? 1.0 / std::sqrt(d) : 0.0;
  }
  linalg::Matrix laplacian(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double w = similarity(i, j) * inv_sqrt_degree[i] * inv_sqrt_degree[j];
      laplacian(i, j) = (i == j ? 1.0 : 0.0) - w;
    }
  }

  const linalg::EigenDecomposition eig = linalg::symmetric_eigen(laplacian);

  // Spectral embedding: rows are entities, columns the k bottom eigenvectors.
  std::vector<linalg::Vector> embedding(n, linalg::Vector(k, 0.0));
  for (std::size_t c = 0; c < k; ++c) {
    const auto vec = eig.vectors.row(c);
    for (std::size_t i = 0; i < n; ++i) embedding[i][c] = vec[i];
  }
  // Row normalization (Ng-Jordan-Weiss step).
  for (auto& row : embedding) {
    const double nrm = linalg::norm(row);
    if (nrm > 0.0) linalg::scale(row, 1.0 / nrm);
  }

  return kmeans(embedding, k, engine).assignments;
}

}  // namespace plos::cluster
