#include "cluster/lsh.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace plos::cluster {

RandomHyperplaneHasher::RandomHyperplaneHasher(std::size_t dim,
                                               std::size_t num_bits,
                                               rng::Engine& engine)
    : dim_(dim), num_bits_(num_bits) {
  PLOS_CHECK(dim >= 1, "RandomHyperplaneHasher: zero dimension");
  PLOS_CHECK(num_bits >= 1 && num_bits <= 30,
             "RandomHyperplaneHasher: num_bits outside [1,30]");
  hyperplanes_.reserve(num_bits);
  for (std::size_t b = 0; b < num_bits; ++b) {
    hyperplanes_.push_back(engine.gaussian_vector(dim));
  }
}

std::size_t RandomHyperplaneHasher::bucket(std::span<const double> x) const {
  PLOS_CHECK(x.size() == dim_, "RandomHyperplaneHasher: dimension mismatch");
  std::size_t code = 0;
  for (std::size_t b = 0; b < num_bits_; ++b) {
    code = (code << 1) | (linalg::dot(hyperplanes_[b], x) >= 0.0 ? 1u : 0u);
  }
  return code;
}

linalg::Vector RandomHyperplaneHasher::histogram(
    const std::vector<linalg::Vector>& points) const {
  linalg::Vector h(num_buckets(), 0.0);
  if (points.empty()) return h;
  for (const auto& p : points) h[bucket(p)] += 1.0;
  linalg::scale(h, 1.0 / static_cast<double>(points.size()));
  return h;
}

double generalized_jaccard(std::span<const double> a,
                           std::span<const double> b) {
  PLOS_CHECK(a.size() == b.size(), "generalized_jaccard: size mismatch");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    PLOS_CHECK(a[i] >= 0.0 && b[i] >= 0.0,
               "generalized_jaccard: histograms must be non-negative");
    num += std::min(a[i], b[i]);
    den += std::max(a[i], b[i]);
  }
  return den > 0.0 ? num / den : 1.0;
}

}  // namespace plos::cluster
