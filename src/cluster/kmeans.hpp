// Lloyd's k-means with k-means++ seeding and multi-restart.
//
// Used by the Single baseline (users with no labels cluster their own data)
// and as the final step of spectral clustering.
#pragma once

#include <vector>

#include "linalg/vector.hpp"
#include "rng/engine.hpp"

namespace plos::cluster {

struct KMeansOptions {
  int max_iterations = 100;
  int restarts = 5;          ///< keep the best of this many k-means++ runs
  double tolerance = 1e-8;   ///< stop when inertia improvement drops below
};

struct KMeansResult {
  std::vector<std::size_t> assignments;  ///< cluster index per point
  std::vector<linalg::Vector> centroids;
  double inertia = 0.0;  ///< sum of squared distances to assigned centroids
};

/// Clusters `points` into k groups. Requires 1 <= k <= points.size().
KMeansResult kmeans(const std::vector<linalg::Vector>& points, std::size_t k,
                    rng::Engine& engine, const KMeansOptions& options = {});

}  // namespace plos::cluster
