// Hungarian (Kuhn-Munkres) algorithm for minimum-cost assignment.
//
// The evaluation harness uses it to match discovered clusters against
// ground-truth classes ("best class assignment" in the paper's Single
// baseline evaluation).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace plos::cluster {

struct AssignmentResult {
  /// assignment[row] = column matched to that row.
  std::vector<std::size_t> assignment;
  double total_cost = 0.0;
};

/// Minimum-cost perfect matching on a square cost matrix (O(n^3),
/// potentials formulation).
AssignmentResult solve_assignment(const linalg::Matrix& cost);

/// Accuracy of `predicted` against `truth` under the best one-to-one
/// relabeling of predicted cluster ids (both in {0..k-1} with k =
/// num_classes). This is the paper's "label matching" evaluation for
/// clustering outputs.
double best_assignment_accuracy(const std::vector<std::size_t>& predicted,
                                const std::vector<std::size_t>& truth,
                                std::size_t num_classes);

}  // namespace plos::cluster
