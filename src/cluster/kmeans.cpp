#include "cluster/kmeans.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace plos::cluster {

namespace {

// k-means++ seeding: each next centroid is drawn with probability
// proportional to the squared distance to the nearest chosen centroid.
std::vector<linalg::Vector> seed_plus_plus(
    const std::vector<linalg::Vector>& points, std::size_t k,
    rng::Engine& engine) {
  std::vector<linalg::Vector> centroids;
  centroids.reserve(k);
  const auto first = static_cast<std::size_t>(
      engine.uniform_int(0, static_cast<std::int64_t>(points.size()) - 1));
  centroids.push_back(points[first]);

  linalg::Vector d2(points.size());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids) {
        best = std::min(best, linalg::squared_distance(points[i], c));
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with existing centroids; duplicate one.
      centroids.push_back(points.front());
      continue;
    }
    double r = engine.uniform(0.0, total);
    std::size_t pick = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      r -= d2[i];
      if (r <= 0.0) {
        pick = i;
        break;
      }
    }
    centroids.push_back(points[pick]);
  }
  return centroids;
}

KMeansResult run_once(const std::vector<linalg::Vector>& points, std::size_t k,
                      rng::Engine& engine, const KMeansOptions& options) {
  const std::size_t dim = points.front().size();
  KMeansResult result;
  result.centroids = seed_plus_plus(points, k, engine);
  result.assignments.assign(points.size(), 0);
  double prev_inertia = std::numeric_limits<double>::infinity();

  for (int it = 0; it < options.max_iterations; ++it) {
    // Assignment step.
    double inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = linalg::squared_distance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignments[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;

    // Update step.
    std::vector<linalg::Vector> sums(k, linalg::zeros(dim));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      linalg::axpy(1.0, points[i], sums[result.assignments[i]]);
      ++counts[result.assignments[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: re-seed at the point farthest from its centroid.
        double worst = -1.0;
        std::size_t worst_i = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          const double d = linalg::squared_distance(
              points[i], result.centroids[result.assignments[i]]);
          if (d > worst) {
            worst = d;
            worst_i = i;
          }
        }
        result.centroids[c] = points[worst_i];
      } else {
        linalg::scale(sums[c], 1.0 / static_cast<double>(counts[c]));
        result.centroids[c] = std::move(sums[c]);
      }
    }

    if (prev_inertia - inertia < options.tolerance) break;
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace

KMeansResult kmeans(const std::vector<linalg::Vector>& points, std::size_t k,
                    rng::Engine& engine, const KMeansOptions& options) {
  PLOS_CHECK(!points.empty(), "kmeans: no points");
  PLOS_CHECK(k >= 1 && k <= points.size(), "kmeans: invalid k");
  const std::size_t dim = points.front().size();
  for (const auto& p : points) {
    PLOS_CHECK(p.size() == dim, "kmeans: ragged points");
  }

  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  const int restarts = std::max(1, options.restarts);
  for (int r = 0; r < restarts; ++r) {
    KMeansResult candidate = run_once(points, k, engine, options);
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }
  return best;
}

}  // namespace plos::cluster
