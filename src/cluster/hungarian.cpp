#include "cluster/hungarian.hpp"

#include <limits>

#include "common/assert.hpp"

namespace plos::cluster {

AssignmentResult solve_assignment(const linalg::Matrix& cost) {
  PLOS_CHECK(cost.rows() == cost.cols() && cost.rows() > 0,
             "solve_assignment: cost matrix must be square and non-empty");
  const std::size_t n = cost.rows();
  const double inf = std::numeric_limits<double>::infinity();

  // Potentials formulation with 1-based sentinel column 0 (e-maxx scheme).
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<std::size_t> match(n + 1, 0);  // match[col] = row (1-based)
  std::vector<std::size_t> way(n + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    match[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, inf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = match[j0];
      double delta = inf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    // Augment along the alternating path.
    do {
      const std::size_t j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.assignment.assign(n, 0);
  for (std::size_t j = 1; j <= n; ++j) {
    result.assignment[match[j] - 1] = j - 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    result.total_cost += cost(i, result.assignment[i]);
  }
  return result;
}

double best_assignment_accuracy(const std::vector<std::size_t>& predicted,
                                const std::vector<std::size_t>& truth,
                                std::size_t num_classes) {
  PLOS_CHECK(predicted.size() == truth.size() && !predicted.empty(),
             "best_assignment_accuracy: size mismatch or empty");
  PLOS_CHECK(num_classes >= 1, "best_assignment_accuracy: no classes");

  // Negated confusion counts as assignment costs: the minimum-cost matching
  // maximizes the number of agreeing samples.
  linalg::Matrix cost(num_classes, num_classes, 0.0);
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    PLOS_CHECK(predicted[i] < num_classes && truth[i] < num_classes,
               "best_assignment_accuracy: label out of range");
    cost(predicted[i], truth[i]) -= 1.0;
  }
  const AssignmentResult match = solve_assignment(cost);
  return -match.total_cost / static_cast<double>(predicted.size());
}

}  // namespace plos::cluster
