#include "rng/multivariate_normal.hpp"

#include "common/assert.hpp"

namespace plos::rng {

MultivariateNormal::MultivariateNormal(linalg::Vector mean,
                                       const linalg::Matrix& covariance)
    : mean_(std::move(mean)) {
  PLOS_CHECK(covariance.rows() == mean_.size() &&
                 covariance.cols() == mean_.size(),
             "MultivariateNormal: covariance/mean dimension mismatch");
  auto l = linalg::cholesky(covariance);
  PLOS_CHECK(l.has_value(),
             "MultivariateNormal: covariance is not positive definite");
  chol_ = std::move(*l);
}

linalg::Vector MultivariateNormal::sample(Engine& engine) const {
  const std::size_t n = mean_.size();
  const linalg::Vector z = engine.gaussian_vector(n);
  linalg::Vector x = mean_;
  // x += L z, exploiting the lower-triangular structure of L.
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j <= i; ++j) s += chol_(i, j) * z[j];
    x[i] += s;
  }
  return x;
}

std::vector<linalg::Vector> MultivariateNormal::sample_n(Engine& engine,
                                                         std::size_t n) const {
  std::vector<linalg::Vector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample(engine));
  return out;
}

}  // namespace plos::rng
