// Multivariate normal sampling via Cholesky factorization of the covariance.
#pragma once

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "rng/engine.hpp"

namespace plos::rng {

/// Sampler for N(mean, covariance). The covariance must be symmetric
/// positive definite (checked at construction via Cholesky).
class MultivariateNormal {
 public:
  MultivariateNormal(linalg::Vector mean, const linalg::Matrix& covariance);

  std::size_t dim() const { return mean_.size(); }

  /// One draw x = mean + L z with z ~ N(0, I).
  linalg::Vector sample(Engine& engine) const;

  /// n independent draws, one per returned row.
  std::vector<linalg::Vector> sample_n(Engine& engine, std::size_t n) const;

 private:
  linalg::Vector mean_;
  linalg::Matrix chol_;  // lower-triangular factor of the covariance
};

}  // namespace plos::rng
