// Seeded randomness substrate.
//
// Every stochastic component in the library draws from an explicitly seeded
// Engine passed in by the caller, so experiments are deterministic and
// independent sub-streams can be forked per user / per node.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "linalg/vector.hpp"

namespace plos::rng {

class Engine {
 public:
  explicit Engine(std::uint64_t seed) : gen_(seed) {}

  /// Fork a child engine whose stream is decorrelated from this one.
  /// Forking with distinct tags yields independent sub-streams (e.g. one per
  /// user), insulated from changes in how much randomness siblings consume.
  Engine fork(std::uint64_t tag);

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw (mean 0, stddev 1) scaled to (mean, stddev).
  double gaussian(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p);

  /// Vector of n independent gaussian(mean, stddev) draws.
  linalg::Vector gaussian_vector(std::size_t n, double mean = 0.0,
                                 double stddev = 1.0);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices sampled uniformly from {0, ..., n-1}.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  std::mt19937_64& raw() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace plos::rng
