#include "rng/engine.hpp"

#include <numeric>

#include "common/assert.hpp"

namespace plos::rng {

namespace {

// SplitMix64 finalizer: decorrelates fork seeds derived from (state, tag).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Engine Engine::fork(std::uint64_t tag) {
  const std::uint64_t base = gen_();
  return Engine(mix(base ^ mix(tag)));
}

double Engine::uniform(double lo, double hi) {
  PLOS_CHECK(lo <= hi, "uniform: lo > hi");
  return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

std::int64_t Engine::uniform_int(std::int64_t lo, std::int64_t hi) {
  PLOS_CHECK(lo <= hi, "uniform_int: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
}

double Engine::gaussian(double mean, double stddev) {
  PLOS_CHECK(stddev >= 0.0, "gaussian: negative stddev");
  return std::normal_distribution<double>(mean, stddev)(gen_);
}

bool Engine::bernoulli(double p) {
  PLOS_CHECK(p >= 0.0 && p <= 1.0, "bernoulli: p outside [0,1]");
  return std::bernoulli_distribution(p)(gen_);
}

linalg::Vector Engine::gaussian_vector(std::size_t n, double mean,
                                       double stddev) {
  linalg::Vector out(n);
  for (double& v : out) v = gaussian(mean, stddev);
  return out;
}

std::vector<std::size_t> Engine::sample_without_replacement(std::size_t n,
                                                            std::size_t k) {
  PLOS_CHECK(k <= n, "sample_without_replacement: k > n");
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Partial Fisher-Yates: only the first k positions need to be finalized.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace plos::rng
