// Multi-user dataset containers.
//
// Terminology follows the paper: T users indexed by t, user t holding m_t
// samples of which the "revealed" subset carries labels visible to the
// learner (l_t of them; l_t = 0 for users who provide no labels). Ground
// truth is retained for every sample so the evaluation harness can score
// predictions on both labeled and unlabeled users.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/vector.hpp"
#include "obs/manifest.hpp"

namespace plos::data {

/// Binary labels are {-1, +1} throughout, as in the paper.
struct UserData {
  std::vector<linalg::Vector> samples;
  std::vector<int> true_labels;   ///< ground truth per sample, +/-1
  std::vector<bool> revealed;     ///< revealed[i]: label visible to learners

  std::size_t num_samples() const { return samples.size(); }
  std::size_t num_revealed() const;
  bool provides_labels() const { return num_revealed() > 0; }

  /// Indices of revealed / hidden samples, in order.
  std::vector<std::size_t> revealed_indices() const;
  std::vector<std::size_t> hidden_indices() const;
};

struct MultiUserDataset {
  std::vector<UserData> users;

  std::size_t num_users() const { return users.size(); }

  /// Feature dimension (0 for an empty dataset).
  std::size_t dim() const;

  /// Total samples across users.
  std::size_t total_samples() const;

  /// Indices of users with / without any revealed labels.
  std::vector<std::size_t> labeled_users() const;
  std::vector<std::size_t> unlabeled_users() const;

  /// Validates the container invariants (consistent sizes, +/-1 labels,
  /// uniform dimension); throws PreconditionError on violation.
  void check_invariants() const;
};

/// Identity fingerprint for run manifests: shape counts plus an FNV-1a
/// hash over every sample's raw double bits, true label, and revealed
/// flag, in user/sample order. Two datasets with equal fingerprints are
/// bitwise the same training input.
obs::DatasetFingerprint fingerprint(const MultiUserDataset& dataset,
                                    const std::string& name);

}  // namespace plos::data
