#include "data/transform.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace plos::data {

Standardizer Standardizer::fit(const MultiUserDataset& dataset) {
  const std::size_t d = dataset.dim();
  PLOS_CHECK(d > 0, "Standardizer: empty dataset");
  const auto n = static_cast<double>(dataset.total_samples());
  PLOS_CHECK(n > 0, "Standardizer: no samples");

  Standardizer s;
  s.mean_.assign(d, 0.0);
  s.scale_.assign(d, 0.0);
  for (const auto& u : dataset.users) {
    for (const auto& x : u.samples) linalg::axpy(1.0, x, s.mean_);
  }
  linalg::scale(s.mean_, 1.0 / n);
  for (const auto& u : dataset.users) {
    for (const auto& x : u.samples) {
      for (std::size_t j = 0; j < d; ++j) {
        const double dev = x[j] - s.mean_[j];
        s.scale_[j] += dev * dev;
      }
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    s.scale_[j] = std::sqrt(s.scale_[j] / n);
    if (s.scale_[j] <= 0.0) s.scale_[j] = 1.0;
  }
  return s;
}

linalg::Vector Standardizer::apply(const linalg::Vector& x) const {
  PLOS_CHECK(x.size() == mean_.size(), "Standardizer: dimension mismatch");
  linalg::Vector out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    out[j] = (x[j] - mean_[j]) / scale_[j];
  }
  return out;
}

void Standardizer::apply_in_place(MultiUserDataset& dataset) const {
  for (auto& u : dataset.users) {
    for (auto& x : u.samples) x = apply(x);
  }
}

linalg::Vector augment_bias(const linalg::Vector& x) {
  linalg::Vector out = x;
  out.push_back(1.0);
  return out;
}

void augment_bias(MultiUserDataset& dataset) {
  for (auto& u : dataset.users) {
    for (auto& x : u.samples) x.push_back(1.0);
  }
}

}  // namespace plos::data
