#include "data/synthetic.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "rng/multivariate_normal.hpp"

namespace plos::data {

linalg::Vector rotate2d(const linalg::Vector& point, double angle) {
  PLOS_CHECK(point.size() == 2, "rotate2d: point must be 2-D");
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  return {c * point[0] - s * point[1], s * point[0] + c * point[1]};
}

MultiUserDataset generate_synthetic(const SyntheticSpec& spec,
                                    rng::Engine& engine) {
  PLOS_CHECK(spec.num_users >= 1, "generate_synthetic: need at least one user");
  PLOS_CHECK(spec.points_per_class >= 1,
             "generate_synthetic: need at least one point per class");
  PLOS_CHECK(spec.label_noise >= 0.0 && spec.label_noise <= 1.0,
             "generate_synthetic: label_noise outside [0,1]");

  linalg::Matrix cov(2, 2);
  cov(0, 0) = cov(1, 1) = spec.variance;
  cov(0, 1) = cov(1, 0) = spec.covariance;
  const linalg::Vector mean_pos{spec.mean_coordinate, spec.mean_coordinate};
  const linalg::Vector mean_neg{-spec.mean_coordinate, -spec.mean_coordinate};
  const rng::MultivariateNormal pos_dist(mean_pos, cov);
  const rng::MultivariateNormal neg_dist(mean_neg, cov);

  MultiUserDataset dataset;
  dataset.users.resize(spec.num_users);
  for (std::size_t t = 0; t < spec.num_users; ++t) {
    const double angle =
        spec.num_users > 1
            ? spec.max_rotation * static_cast<double>(t) /
                  static_cast<double>(spec.num_users - 1)
            : 0.0;
    rng::Engine user_engine = engine.fork(t);
    UserData& user = dataset.users[t];

    for (int cls = 0; cls < 2; ++cls) {
      const auto& dist = (cls == 0) ? pos_dist : neg_dist;
      const int label = (cls == 0) ? 1 : -1;
      for (std::size_t i = 0; i < spec.points_per_class; ++i) {
        linalg::Vector x = rotate2d(dist.sample(user_engine), angle);
        if (spec.add_bias_dimension) x.push_back(1.0);
        user.samples.push_back(std::move(x));
        // Label noise: the ground truth itself is swapped, as in the paper
        // ("we randomly swap 10% of the ground truth labels").
        const int y =
            user_engine.bernoulli(spec.label_noise) ? -label : label;
        user.true_labels.push_back(y);
      }
    }
    user.revealed.assign(user.num_samples(), false);
  }
  dataset.check_invariants();
  return dataset;
}

}  // namespace plos::data
