// Synthetic rotated-Gaussian population (paper §VI-D).
//
// Two classes drawn from 2-D normals with means ±(10,10) and covariance
// [[225, -180], [-180, 225]]; 10 % of ground-truth labels are swapped to
// make classes non-separable. Each user observes the same base distribution
// rotated about the origin; with maximum rotation angle A and T users, user
// t's angle is t·A/(T−1) (uniformly spaced), which controls the
// "difference level" among users.
#pragma once

#include "data/dataset.hpp"
#include "linalg/matrix.hpp"
#include "rng/engine.hpp"

namespace plos::data {

struct SyntheticSpec {
  std::size_t num_users = 10;
  std::size_t points_per_class = 200;
  double max_rotation = 0.0;   ///< radians; users get uniformly spaced angles
  double label_noise = 0.1;    ///< fraction of ground-truth labels swapped
  double mean_coordinate = 10.0;        ///< class means at ±(m, m)
  double variance = 225.0;              ///< diagonal covariance entries
  double covariance = -180.0;           ///< off-diagonal covariance entries
  bool add_bias_dimension = true;  ///< append constant-1 feature (paper fn. 1)
};

/// Generates the population with all labels hidden; apply data::reveal_labels
/// to select providers. Deterministic given the engine's seed.
MultiUserDataset generate_synthetic(const SyntheticSpec& spec,
                                    rng::Engine& engine);

/// 2-D rotation of `point` by `angle` radians about the origin (exposed for
/// tests and examples).
linalg::Vector rotate2d(const linalg::Vector& point, double angle);

}  // namespace plos::data
