#include "data/labeling.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace plos::data {

void hide_all_labels(MultiUserDataset& dataset) {
  for (auto& u : dataset.users) {
    std::fill(u.revealed.begin(), u.revealed.end(), false);
  }
}

void reveal_labels(MultiUserDataset& dataset,
                   const std::vector<std::size_t>& providers, double fraction,
                   rng::Engine& engine, std::size_t min_per_class) {
  PLOS_CHECK(fraction >= 0.0 && fraction <= 1.0,
             "reveal_labels: fraction outside [0,1]");
  for (std::size_t t : providers) {
    PLOS_CHECK(t < dataset.num_users(), "reveal_labels: provider out of range");
    UserData& user = dataset.users[t];
    const std::size_t m = user.num_samples();
    if (m == 0) continue;

    auto budget = static_cast<std::size_t>(
        std::llround(fraction * static_cast<double>(m)));
    budget = std::min(budget, m);

    std::fill(user.revealed.begin(), user.revealed.end(), false);

    // Guarantee class coverage first, then fill the rest uniformly.
    std::vector<std::size_t> pos, neg;
    for (std::size_t i = 0; i < m; ++i) {
      (user.true_labels[i] > 0 ? pos : neg).push_back(i);
    }
    engine.shuffle(pos);
    engine.shuffle(neg);

    std::vector<std::size_t> chosen;
    const std::size_t take_pos = std::min(min_per_class, pos.size());
    const std::size_t take_neg = std::min(min_per_class, neg.size());
    chosen.insert(chosen.end(), pos.begin(), pos.begin() + take_pos);
    chosen.insert(chosen.end(), neg.begin(), neg.begin() + take_neg);

    std::vector<std::size_t> rest;
    rest.insert(rest.end(), pos.begin() + take_pos, pos.end());
    rest.insert(rest.end(), neg.begin() + take_neg, neg.end());
    engine.shuffle(rest);
    for (std::size_t i = 0; i < rest.size() && chosen.size() < budget; ++i) {
      chosen.push_back(rest[i]);
    }

    for (std::size_t i : chosen) user.revealed[i] = true;
  }
}

std::vector<std::size_t> choose_providers(const MultiUserDataset& dataset,
                                          std::size_t count,
                                          rng::Engine& engine) {
  PLOS_CHECK(count <= dataset.num_users(),
             "choose_providers: more providers than users");
  auto idx = engine.sample_without_replacement(dataset.num_users(), count);
  std::sort(idx.begin(), idx.end());
  return idx;
}

}  // namespace plos::data
