#include "data/dataset.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace plos::data {

std::size_t UserData::num_revealed() const {
  return static_cast<std::size_t>(
      std::count(revealed.begin(), revealed.end(), true));
}

std::vector<std::size_t> UserData::revealed_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < revealed.size(); ++i) {
    if (revealed[i]) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> UserData::hidden_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < revealed.size(); ++i) {
    if (!revealed[i]) out.push_back(i);
  }
  return out;
}

std::size_t MultiUserDataset::dim() const {
  for (const auto& u : users) {
    if (!u.samples.empty()) return u.samples.front().size();
  }
  return 0;
}

std::size_t MultiUserDataset::total_samples() const {
  std::size_t n = 0;
  for (const auto& u : users) n += u.num_samples();
  return n;
}

std::vector<std::size_t> MultiUserDataset::labeled_users() const {
  std::vector<std::size_t> out;
  for (std::size_t t = 0; t < users.size(); ++t) {
    if (users[t].provides_labels()) out.push_back(t);
  }
  return out;
}

std::vector<std::size_t> MultiUserDataset::unlabeled_users() const {
  std::vector<std::size_t> out;
  for (std::size_t t = 0; t < users.size(); ++t) {
    if (!users[t].provides_labels()) out.push_back(t);
  }
  return out;
}

void MultiUserDataset::check_invariants() const {
  const std::size_t d = dim();
  for (const auto& u : users) {
    PLOS_CHECK(u.true_labels.size() == u.samples.size(),
               "MultiUserDataset: labels/samples size mismatch");
    PLOS_CHECK(u.revealed.size() == u.samples.size(),
               "MultiUserDataset: revealed mask size mismatch");
    for (int y : u.true_labels) {
      PLOS_CHECK(y == 1 || y == -1, "MultiUserDataset: labels must be +/-1");
    }
    for (const auto& x : u.samples) {
      PLOS_CHECK(x.size() == d, "MultiUserDataset: inconsistent dimension");
    }
  }
}

}  // namespace plos::data
