#include "data/dataset.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace plos::data {

std::size_t UserData::num_revealed() const {
  return static_cast<std::size_t>(
      std::count(revealed.begin(), revealed.end(), true));
}

std::vector<std::size_t> UserData::revealed_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < revealed.size(); ++i) {
    if (revealed[i]) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> UserData::hidden_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < revealed.size(); ++i) {
    if (!revealed[i]) out.push_back(i);
  }
  return out;
}

std::size_t MultiUserDataset::dim() const {
  for (const auto& u : users) {
    if (!u.samples.empty()) return u.samples.front().size();
  }
  return 0;
}

std::size_t MultiUserDataset::total_samples() const {
  std::size_t n = 0;
  for (const auto& u : users) n += u.num_samples();
  return n;
}

std::vector<std::size_t> MultiUserDataset::labeled_users() const {
  std::vector<std::size_t> out;
  for (std::size_t t = 0; t < users.size(); ++t) {
    if (users[t].provides_labels()) out.push_back(t);
  }
  return out;
}

std::vector<std::size_t> MultiUserDataset::unlabeled_users() const {
  std::vector<std::size_t> out;
  for (std::size_t t = 0; t < users.size(); ++t) {
    if (!users[t].provides_labels()) out.push_back(t);
  }
  return out;
}

void MultiUserDataset::check_invariants() const {
  const std::size_t d = dim();
  for (const auto& u : users) {
    PLOS_CHECK(u.true_labels.size() == u.samples.size(),
               "MultiUserDataset: labels/samples size mismatch");
    PLOS_CHECK(u.revealed.size() == u.samples.size(),
               "MultiUserDataset: revealed mask size mismatch");
    for (int y : u.true_labels) {
      PLOS_CHECK(y == 1 || y == -1, "MultiUserDataset: labels must be +/-1");
    }
    for (const auto& x : u.samples) {
      PLOS_CHECK(x.size() == d, "MultiUserDataset: inconsistent dimension");
    }
  }
}

obs::DatasetFingerprint fingerprint(const MultiUserDataset& dataset,
                                    const std::string& name) {
  obs::DatasetFingerprint fp;
  fp.name = name;
  fp.users = dataset.num_users();
  fp.providers = dataset.labeled_users().size();
  fp.samples = dataset.total_samples();
  fp.dim = dataset.dim();

  obs::Fnv1a hash;
  hash.add_u64(fp.users);
  hash.add_u64(fp.dim);
  std::size_t revealed = 0;
  for (const UserData& user : dataset.users) {
    hash.add_u64(user.num_samples());
    for (std::size_t i = 0; i < user.num_samples(); ++i) {
      for (double x : user.samples[i]) hash.add_double(x);
      hash.add_u64(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(user.true_labels[i])));
      hash.add_u64(user.revealed[i] ? 1 : 0);
      if (user.revealed[i]) ++revealed;
    }
  }
  fp.labeled_fraction =
      fp.samples == 0
          ? 0.0
          : static_cast<double>(revealed) / static_cast<double>(fp.samples);
  fp.content_hash = hash.digest();
  return fp;
}

}  // namespace plos::data
