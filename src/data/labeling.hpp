// Label-revelation policies: which users provide labels and how many.
//
// Experiments sweep (a) the number of label-providing users and (b) the
// fraction of each provider's samples that are labeled ("training rate").
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"
#include "rng/engine.hpp"

namespace plos::data {

/// Hides every label in the dataset (all revealed flags to false).
void hide_all_labels(MultiUserDataset& dataset);

/// Reveals labels for `fraction` of each listed provider's samples, chosen
/// uniformly at random but guaranteeing at least `min_per_class` samples of
/// each class when the user has them (the paper labels a handful of samples
/// per activity). fraction in [0, 1].
void reveal_labels(MultiUserDataset& dataset,
                   const std::vector<std::size_t>& providers, double fraction,
                   rng::Engine& engine, std::size_t min_per_class = 1);

/// Chooses `count` distinct provider users uniformly at random.
std::vector<std::size_t> choose_providers(const MultiUserDataset& dataset,
                                          std::size_t count,
                                          rng::Engine& engine);

}  // namespace plos::data
