// Feature transforms: z-score standardization and bias-dimension
// augmentation (paper footnote 1: affine hyperplanes via a constant-1
// feature).
#pragma once

#include "data/dataset.hpp"
#include "linalg/vector.hpp"

namespace plos::data {

/// Per-dimension affine transform x -> (x - mean) / scale fitted on data.
class Standardizer {
 public:
  /// Fits per-dimension mean and standard deviation over every sample of
  /// every user. Dimensions with zero variance get scale 1.
  static Standardizer fit(const MultiUserDataset& dataset);

  linalg::Vector apply(const linalg::Vector& x) const;
  void apply_in_place(MultiUserDataset& dataset) const;

  const linalg::Vector& mean() const { return mean_; }
  const linalg::Vector& scale() const { return scale_; }

 private:
  linalg::Vector mean_;
  linalg::Vector scale_;
};

/// Appends a constant-1 dimension to a single vector.
linalg::Vector augment_bias(const linalg::Vector& x);

/// Appends a constant-1 dimension to every sample in the dataset.
void augment_bias(MultiUserDataset& dataset);

}  // namespace plos::data
