#include "sensing/body_sensor.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "data/transform.hpp"

namespace plos::sensing {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Baseline limb pitch (rotation of the limb about the mediolateral x axis)
// for a body site/posture. Both activities are *rest* postures — the paper
// picked them because they are subtle to tell apart: with feet on the floor
// the shins stay near vertical while sitting, tilting only moderately with
// foot placement, and the torso slouches a little. (The thigh rotates 90°,
// but no node is mounted there.)
double base_limb_pitch(std::size_t node, Activity activity,
                       double lean_angle) {
  if (node == 0) {  // waist
    return (activity == Activity::kSittingRest) ? 0.08 + lean_angle
                                                : 0.3 * lean_angle;
  }
  return (activity == Activity::kSittingRest) ? 0.24 + 0.5 * lean_angle
                                              : 0.3 * lean_angle;
}

// Draws the next micro-posture pitch target for a node/posture.
double draw_posture_target(const BodySensorSpec& spec, std::size_t node,
                           Activity activity, rng::Engine& engine) {
  if (activity == Activity::kStandingRest) {
    return engine.uniform(-spec.posture_shift_standing,
                          spec.posture_shift_standing);
  }
  if (node == 0) {
    return engine.uniform(spec.sitting_waist_shift_min,
                          spec.sitting_waist_shift_max);
  }
  return engine.uniform(spec.sitting_shin_shift_min,
                        spec.sitting_shin_shift_max);
}

// Gravity (unit, in g) in the limb frame at pitch p: R_x(p) · (0, 0, -1).
Vec3 pitched_gravity(double pitch) {
  return {0.0, std::sin(pitch), -std::cos(pitch)};
}

}  // namespace

PlacementArchetypes sample_placement_archetypes(const BodySensorSpec& spec,
                                                rng::Engine& engine) {
  PLOS_CHECK(spec.num_wearing_styles >= 1,
             "sample_placement_archetypes: need at least one style");
  PlacementArchetypes archetypes;
  archetypes.styles.resize(spec.num_wearing_styles);
  for (auto& style : archetypes.styles) {
    for (auto& rotation : style) {
      rotation = Rotation3::random(engine, spec.placement_rotation_max);
    }
  }
  return archetypes;
}

UserTraits sample_user_traits(const BodySensorSpec& spec,
                              const PlacementArchetypes& archetypes,
                              rng::Engine& engine) {
  PLOS_CHECK(!archetypes.styles.empty(),
             "sample_user_traits: no wearing styles");
  UserTraits traits;
  const auto style = static_cast<std::size_t>(engine.uniform_int(
      0, static_cast<std::int64_t>(archetypes.styles.size()) - 1));
  for (std::size_t n = 0; n < kNumBodyNodes; ++n) {
    NodeTraits& node = traits.nodes[n];
    node.mounting =
        Rotation3::random(engine, spec.placement_jitter)
            .compose(archetypes.styles[style][n]);
    node.noise_stddev = engine.uniform(0.3, 1.0) * spec.accel_noise_max;
    node.gyro_bias_u = engine.gaussian(0.0, spec.gyro_bias_stddev);
    node.gyro_bias_v = engine.gaussian(0.0, spec.gyro_bias_stddev);
  }
  traits.lean_angle = engine.gaussian(0.0, spec.lean_stddev);
  traits.tremor_amplitude = engine.uniform(0.3, 1.0) * spec.tremor_amplitude_max;
  traits.tremor_frequency = engine.uniform(0.8, 2.5);  // Hz, physiological sway
  traits.sway_gain_standing = engine.uniform(0.7, 1.3);
  traits.sway_gain_sitting = engine.uniform(0.35, 1.05);
  return traits;
}

std::vector<features::NodeSignals> simulate_user_activity(
    const BodySensorSpec& spec, const UserTraits& traits, Activity activity,
    rng::Engine& engine) {
  PLOS_CHECK(spec.sample_rate_hz > 0.0 && spec.seconds_per_activity > 0.0,
             "simulate_user_activity: non-positive duration or rate");
  const auto n = static_cast<std::size_t>(spec.sample_rate_hz *
                                          spec.seconds_per_activity);
  const double dt = 1.0 / spec.sample_rate_hz;
  // Standing tends to need more balance corrections than sitting, but the
  // per-user gains overlap across the population (see UserTraits).
  const double sway_gain = (activity == Activity::kStandingRest)
                               ? traits.sway_gain_standing
                               : traits.sway_gain_sitting;

  // Session-wide restlessness trace shared by all nodes: one latent that
  // modulates every sway/variance feature coherently.
  std::vector<double> restlessness_trace(n, 1.0);
  {
    const double smoothing =
        1.0 - std::exp(-dt / std::max(spec.posture_smoothing_seconds, 1e-6));
    double episode_samples_left = 0.0;
    double target = 1.0;
    double level = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (episode_samples_left <= 0.0) {
        episode_samples_left = engine.uniform(0.5, 1.5) *
                               spec.episode_mean_seconds *
                               spec.sample_rate_hz;
        target = engine.uniform(spec.restlessness_min, spec.restlessness_max);
        if (i == 0) level = target;
      }
      episode_samples_left -= 1.0;
      level += smoothing * (target - level);
      restlessness_trace[i] = level;
    }
  }

  std::vector<features::NodeSignals> nodes(kNumBodyNodes);
  for (std::size_t node_idx = 0; node_idx < kNumBodyNodes; ++node_idx) {
    const NodeTraits& nt = traits.nodes[node_idx];
    features::NodeSignals sig;
    sig.accel_x.resize(n);
    sig.accel_y.resize(n);
    sig.accel_z.resize(n);
    sig.gyro_u.resize(n);
    sig.gyro_v.resize(n);

    const double base_pitch =
        base_limb_pitch(node_idx, activity, traits.lean_angle);
    const double phase = engine.uniform(0.0, 2.0 * kPi);
    const double omega = 2.0 * kPi * traits.tremor_frequency;
    const double amp = sway_gain * traits.tremor_amplitude;
    // Exponential glide toward each episode's pitch target.
    const double smoothing =
        1.0 - std::exp(-dt / std::max(spec.posture_smoothing_seconds, 1e-6));

    double episode_samples_left = 0.0;
    double pitch_target = 0.0;
    double pitch_offset = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (episode_samples_left <= 0.0) {
        // New micro-posture episode: persistent limb pitch re-adjustment.
        episode_samples_left = engine.uniform(0.5, 1.5) *
                               spec.episode_mean_seconds *
                               spec.sample_rate_hz;
        pitch_target = draw_posture_target(spec, node_idx, activity, engine);
        if (i == 0) pitch_offset = pitch_target;  // start settled
      }
      episode_samples_left -= 1.0;
      pitch_offset += smoothing * (pitch_target - pitch_offset);
      const double restlessness = restlessness_trace[i];

      const Vec3 gravity = pitched_gravity(base_pitch + pitch_offset);
      const double time = static_cast<double>(i) * dt;
      const double sway = restlessness * amp * std::sin(omega * time + phase);
      const double sway2 = restlessness * 0.5 * amp *
                           std::sin(0.37 * omega * time + 2.0 * phase);
      // Postural sway perturbs the limb-frame specific force slightly.
      const Vec3 body{gravity[0] + sway + engine.gaussian(0.0, nt.noise_stddev),
                      gravity[1] + sway2 + engine.gaussian(0.0, nt.noise_stddev),
                      gravity[2] + engine.gaussian(0.0, nt.noise_stddev)};
      const Vec3 sensor = nt.mounting.apply(body);
      sig.accel_x[i] = sensor[0];
      sig.accel_y[i] = sensor[1];
      sig.accel_z[i] = sensor[2];

      // Gyro: angular velocity of the sway (derivative of the sway angle),
      // plus per-user bias and noise.
      const double sway_rate =
          restlessness * amp * omega * std::cos(omega * time + phase);
      sig.gyro_u[i] =
          sway_rate + nt.gyro_bias_u + engine.gaussian(0.0, spec.gyro_noise);
      sig.gyro_v[i] = restlessness * 0.5 * amp * 0.37 * omega *
                          std::cos(0.37 * omega * time + 2.0 * phase) +
                      nt.gyro_bias_v + engine.gaussian(0.0, spec.gyro_noise);
    }
    nodes[node_idx] = std::move(sig);
  }
  return nodes;
}

data::MultiUserDataset generate_body_sensor_dataset(const BodySensorSpec& spec,
                                                    rng::Engine& engine) {
  PLOS_CHECK(spec.num_users >= 1, "generate_body_sensor_dataset: no users");
  data::MultiUserDataset dataset;
  dataset.users.resize(spec.num_users);
  const PlacementArchetypes archetypes =
      sample_placement_archetypes(spec, engine);

  for (std::size_t t = 0; t < spec.num_users; ++t) {
    rng::Engine user_engine = engine.fork(t);
    const UserTraits traits =
        sample_user_traits(spec, archetypes, user_engine);
    data::UserData& user = dataset.users[t];

    for (Activity activity :
         {Activity::kStandingRest, Activity::kSittingRest}) {
      const auto signals =
          simulate_user_activity(spec, traits, activity, user_engine);
      const int label = (activity == Activity::kStandingRest) ? kStandingLabel
                                                              : kSittingLabel;
      for (auto& x : features::extract_windows(signals, spec.window)) {
        user.samples.push_back(std::move(x));
        user.true_labels.push_back(label);
      }
    }
    user.revealed.assign(user.num_samples(), false);
  }

  if (spec.standardize) {
    data::Standardizer::fit(dataset).apply_in_place(dataset);
  }
  if (spec.add_bias_dimension) data::augment_bias(dataset);
  dataset.check_invariants();
  return dataset;
}

}  // namespace plos::sensing
