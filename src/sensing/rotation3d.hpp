// Minimal 3-D rotation utility (axis-angle, Rodrigues' formula).
//
// Models sensor-placement orientation: the paper let subjects attach nodes
// "anywhere in the requested body areas" with no orientation instruction, so
// each simulated node gets a per-user random mounting rotation.
#pragma once

#include <array>

#include "rng/engine.hpp"

namespace plos::sensing {

using Vec3 = std::array<double, 3>;

/// 3x3 rotation matrix (row-major).
class Rotation3 {
 public:
  /// Identity rotation.
  Rotation3();

  /// Rotation by `angle` radians about (unit-normalized) `axis`.
  static Rotation3 axis_angle(const Vec3& axis, double angle);

  /// Uniformly random axis, angle uniform in [0, max_angle].
  static Rotation3 random(rng::Engine& engine, double max_angle);

  Vec3 apply(const Vec3& v) const;
  Rotation3 compose(const Rotation3& other) const;  // this ∘ other

  double entry(std::size_t i, std::size_t j) const { return m_[i][j]; }

 private:
  std::array<std::array<double, 3>, 3> m_;
};

double dot3(const Vec3& a, const Vec3& b);
double norm3(const Vec3& a);
Vec3 normalized3(const Vec3& a);

}  // namespace plos::sensing
