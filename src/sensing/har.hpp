// HAR-like smartphone dataset generator (substitute for UCI HAR, §VI-C).
//
// The paper uses the UCI Human Activity Recognition dataset: 30 subjects,
// 561 precomputed inertial features, classifying the least separable
// activity pair (sitting vs standing) with ~50 samples per class per user.
//
// The generator reproduces the statistical structure the experiments rely
// on directly in feature space:
//   * a shared class-discriminating direction (the commonness every user
//     benefits from);
//   * a per-user rotation of that direction plus a per-user class-agnostic
//     offset, both low-rank (the personal traits) — deliberately *weaker*
//     than the body-sensor simulator's traits, matching the paper's
//     observation that the All↔PLOS accuracy gap shrinks on HAR because a
//     waist-mounted phone in a fixed orientation captures fewer personal
//     placement effects;
//   * heavy-tailed isotropic noise making the pair non separable.
#pragma once

#include <cstddef>

#include "data/dataset.hpp"
#include "rng/engine.hpp"

namespace plos::sensing {

struct HarSpec {
  std::size_t num_users = 30;
  std::size_t dim = 561;
  std::size_t samples_per_class = 50;
  /// Strength of per-user rotation of the class direction (0 = identical
  /// users). Body-sensor-equivalent traits would be ~0.8; HAR is milder.
  double trait_direction_scale = 0.35;
  /// Strength of the per-user class-agnostic feature offset.
  double trait_offset_scale = 0.5;
  /// Rank of the subspace personal offsets live in.
  std::size_t trait_rank = 8;
  /// Isotropic sample noise.
  double noise_stddev = 1.0;
  /// Distance between class means along the (per-user) class direction.
  double class_separation = 3.2;
  bool add_bias_dimension = true;
};

/// Generates the population with all labels hidden (sitting = -1,
/// standing = +1), deterministic given the engine seed.
data::MultiUserDataset generate_har_dataset(const HarSpec& spec,
                                            rng::Engine& engine);

}  // namespace plos::sensing
