// Body-sensor-network simulator (substitute for the paper's §VI-B testbed).
//
// The paper's testbed: 20 subjects, each wearing three TelosB nodes (waist,
// left shin, right shin) with a triaxial accelerometer and biaxial
// gyroscope, performing "rest at standing" and "rest at sitting"; subjects
// placed the nodes freely, so per-user mounting orientation is a major
// source of inter-user variation.
//
// The simulator reproduces that statistical structure:
//   * per activity and body site, a canonical gravity direction in the limb
//     frame (shins rotate ~90° between standing and sitting; the waist
//     changes little) plus small postural sway;
//   * per user: a random mounting rotation per node (the dominant personal
//     trait), a personal lean angle, tremor amplitude/frequency, sensor
//     noise level, and gyroscope bias;
//   * 20 Hz sampling, 3.2 s windows at 50 % overlap, and the identical
//     120-dimensional feature pipeline the paper describes.
//
// Downstream learners only ever see the 120-d feature vectors, so the
// method comparison (PLOS vs All/Single/Group) exercises exactly the same
// code paths as the physical testbed would.
#pragma once

#include <array>
#include <cstddef>

#include "data/dataset.hpp"
#include "features/extractor.hpp"
#include "features/window.hpp"
#include "rng/engine.hpp"
#include "sensing/rotation3d.hpp"

namespace plos::sensing {

enum class Activity { kStandingRest, kSittingRest };

/// Label convention for the two-activity classification task.
inline constexpr int kStandingLabel = 1;
inline constexpr int kSittingLabel = -1;

inline constexpr std::size_t kNumBodyNodes = 3;  // waist, left shin, right shin

struct BodySensorSpec {
  std::size_t num_users = 20;
  double sample_rate_hz = 20.0;
  /// Raw signal duration per activity; 113 s at 20 Hz gives the paper's
  /// ~70 windows per activity per user.
  double seconds_per_activity = 113.0;
  /// Maximum mounting-rotation angle per node. Free placement within a
  /// requested body area varies orientation substantially but not
  /// arbitrarily (~50° worst case keeps a shared component across users).
  double placement_rotation_max = 0.9;
  /// Subjects gravitate toward a few canonical wearing styles (clip on the
  /// belt front vs side, shin inner vs outer, over clothes vs on skin…).
  /// Each user draws one style — a per-node archetype rotation — plus
  /// personal jitter. The styles are the latent group structure the Group
  /// baseline's user-similarity clustering can discover.
  std::size_t num_wearing_styles = 3;
  double placement_jitter = 0.3;
  /// Personal lean/posture deviation (radians, stddev).
  double lean_stddev = 0.12;
  /// Tremor oscillation amplitude upper bound (g).
  double tremor_amplitude_max = 0.25;
  /// Accelerometer white-noise stddev upper bound (g).
  double accel_noise_max = 0.04;
  /// Gyro noise stddev (rad/s) and per-user bias stddev.
  double gyro_noise = 0.02;
  double gyro_bias_stddev = 0.05;
  /// Micro-posture episodes: every ~episode_mean_seconds the subject
  /// re-adjusts (weight shift, foot placement) and the limb pitch glides
  /// toward a newly drawn target over ~posture_smoothing_seconds. Sitting
  /// lets the shins wander over a wide *continuous* range (feet forward /
  /// tucked back) while standing keeps them near vertical. The continuum
  /// gives each class real elongated within-class structure — so centroid
  /// clustering of a user's own data is genuinely imperfect, as the paper
  /// observes — while the between-class pitch gap keeps the maximum-margin
  /// split aligned with the classes.
  double episode_mean_seconds = 15.0;
  double posture_smoothing_seconds = 1.5;
  double posture_shift_standing = 0.08;     ///< uniform ± range, both nodes
  double sitting_shin_shift_min = -0.14;
  double sitting_shin_shift_max = 0.20;
  double sitting_waist_shift_min = -0.08;
  double sitting_waist_shift_max = 0.08;
  /// Restlessness drifts over a session: each episode re-draws a sway
  /// amplitude multiplier from this range (smoothed like the pitch), shared
  /// by all three nodes — one session-wide latent that moves every
  /// variance/energy feature together. This puts broad *within-class*
  /// variation into the diffuse dimensions centroid clustering would
  /// otherwise latch onto, while leaving the maximum-margin class gap in
  /// the orientation features intact.
  double restlessness_min = 0.3;
  double restlessness_max = 2.0;
  features::WindowSpec window{64, 32};
  bool standardize = true;
  bool add_bias_dimension = true;
};

/// Per-node personal traits ("free placement" effects).
struct NodeTraits {
  Rotation3 mounting;       ///< sensor frame vs limb frame
  double noise_stddev = 0;  ///< attachment looseness → accel noise level
  double gyro_bias_u = 0;
  double gyro_bias_v = 0;
};

/// Per-user personal traits.
struct UserTraits {
  std::array<NodeTraits, kNumBodyNodes> nodes;
  double lean_angle = 0;        ///< personal torso lean (radians)
  double tremor_amplitude = 0;  ///< postural tremor amplitude (g)
  double tremor_frequency = 0;  ///< Hz
  /// Personal sway multipliers per posture. The ranges overlap across
  /// users, so sway magnitude alone cannot separate the activities
  /// globally — the reliable cue is the (mounting-dependent) gravity
  /// orientation, which is what makes personalization pay off.
  double sway_gain_standing = 1.0;
  double sway_gain_sitting = 0.6;
};

/// Population-level wearing styles: one archetype mounting rotation per
/// node per style.
struct PlacementArchetypes {
  std::vector<std::array<Rotation3, kNumBodyNodes>> styles;
};

/// Samples the population's wearing styles (deterministic given the
/// engine state).
PlacementArchetypes sample_placement_archetypes(const BodySensorSpec& spec,
                                                rng::Engine& engine);

/// Samples one user's traits: a wearing style plus personal jitter,
/// noise/tremor/lean idiosyncrasies.
UserTraits sample_user_traits(const BodySensorSpec& spec,
                              const PlacementArchetypes& archetypes,
                              rng::Engine& engine);

/// Raw per-node signals of one user performing one activity.
std::vector<features::NodeSignals> simulate_user_activity(
    const BodySensorSpec& spec, const UserTraits& traits, Activity activity,
    rng::Engine& engine);

/// Generates the full multi-user dataset (features already extracted,
/// labels hidden; use data::reveal_labels to select providers).
data::MultiUserDataset generate_body_sensor_dataset(const BodySensorSpec& spec,
                                                    rng::Engine& engine);

}  // namespace plos::sensing
