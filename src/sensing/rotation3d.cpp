#include "sensing/rotation3d.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace plos::sensing {

double dot3(const Vec3& a, const Vec3& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

double norm3(const Vec3& a) { return std::sqrt(dot3(a, a)); }

Vec3 normalized3(const Vec3& a) {
  const double n = norm3(a);
  PLOS_CHECK(n > 0.0, "normalized3: zero vector");
  return {a[0] / n, a[1] / n, a[2] / n};
}

Rotation3::Rotation3() : m_{{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}} {}

Rotation3 Rotation3::axis_angle(const Vec3& axis, double angle) {
  const Vec3 u = normalized3(axis);
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  const double ic = 1.0 - c;
  Rotation3 r;
  r.m_ = {{{c + u[0] * u[0] * ic, u[0] * u[1] * ic - u[2] * s,
            u[0] * u[2] * ic + u[1] * s},
           {u[1] * u[0] * ic + u[2] * s, c + u[1] * u[1] * ic,
            u[1] * u[2] * ic - u[0] * s},
           {u[2] * u[0] * ic - u[1] * s, u[2] * u[1] * ic + u[0] * s,
            c + u[2] * u[2] * ic}}};
  return r;
}

Rotation3 Rotation3::random(rng::Engine& engine, double max_angle) {
  PLOS_CHECK(max_angle >= 0.0, "Rotation3::random: negative max_angle");
  // Uniform direction on the sphere via normalized Gaussian triple.
  Vec3 axis;
  double n = 0.0;
  do {
    axis = {engine.gaussian(), engine.gaussian(), engine.gaussian()};
    n = norm3(axis);
  } while (n < 1e-12);
  const double angle = engine.uniform(0.0, max_angle);
  return axis_angle(axis, angle);
}

Vec3 Rotation3::apply(const Vec3& v) const {
  Vec3 out{};
  for (std::size_t i = 0; i < 3; ++i) {
    out[i] = m_[i][0] * v[0] + m_[i][1] * v[1] + m_[i][2] * v[2];
  }
  return out;
}

Rotation3 Rotation3::compose(const Rotation3& other) const {
  Rotation3 out;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 3; ++k) s += m_[i][k] * other.m_[k][j];
      out.m_[i][j] = s;
    }
  }
  return out;
}

}  // namespace plos::sensing
