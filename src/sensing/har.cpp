#include "sensing/har.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "data/transform.hpp"

namespace plos::sensing {

namespace {

linalg::Vector random_unit(std::size_t dim, rng::Engine& engine) {
  linalg::Vector v = engine.gaussian_vector(dim);
  const double n = linalg::norm(v);
  PLOS_ASSERT(n > 0.0);
  linalg::scale(v, 1.0 / n);
  return v;
}

}  // namespace

data::MultiUserDataset generate_har_dataset(const HarSpec& spec,
                                            rng::Engine& engine) {
  PLOS_CHECK(spec.num_users >= 1, "generate_har_dataset: no users");
  PLOS_CHECK(spec.dim >= 2, "generate_har_dataset: dim too small");
  PLOS_CHECK(spec.samples_per_class >= 1,
             "generate_har_dataset: no samples per class");
  PLOS_CHECK(spec.trait_rank >= 1 && spec.trait_rank <= spec.dim,
             "generate_har_dataset: invalid trait rank");

  // Population-level structure shared by all users.
  const linalg::Vector global_direction = random_unit(spec.dim, engine);
  std::vector<linalg::Vector> trait_basis;
  trait_basis.reserve(spec.trait_rank);
  for (std::size_t r = 0; r < spec.trait_rank; ++r) {
    trait_basis.push_back(random_unit(spec.dim, engine));
  }

  data::MultiUserDataset dataset;
  dataset.users.resize(spec.num_users);
  for (std::size_t t = 0; t < spec.num_users; ++t) {
    rng::Engine user_engine = engine.fork(t);

    // Personal class direction: global direction tilted by a unit vector of
    // the trait subspace, renormalized. trait_direction_scale ≈ tangent of
    // the tilt angle.
    linalg::Vector tilt = linalg::zeros(spec.dim);
    for (const auto& b : trait_basis) {
      linalg::axpy(user_engine.gaussian(), b, tilt);
    }
    const double tilt_norm = linalg::norm(tilt);
    linalg::Vector direction = global_direction;
    if (tilt_norm > 0.0) {
      linalg::axpy(spec.trait_direction_scale / tilt_norm, tilt, direction);
    }
    linalg::scale(direction, 1.0 / linalg::norm(direction));

    // Personal class-agnostic offset in the trait subspace.
    linalg::Vector offset = linalg::zeros(spec.dim);
    for (const auto& b : trait_basis) {
      linalg::axpy(user_engine.gaussian(0.0, spec.trait_offset_scale), b,
                   offset);
    }

    data::UserData& user = dataset.users[t];
    const double half = spec.class_separation / 2.0;
    for (int cls : {+1, -1}) {
      for (std::size_t i = 0; i < spec.samples_per_class; ++i) {
        linalg::Vector x = offset;
        linalg::axpy(static_cast<double>(cls) * half, direction, x);
        const linalg::Vector noise =
            user_engine.gaussian_vector(spec.dim, 0.0, spec.noise_stddev);
        linalg::axpy(1.0, noise, x);
        user.samples.push_back(std::move(x));
        user.true_labels.push_back(cls);
      }
    }
    user.revealed.assign(user.num_samples(), false);
  }

  if (spec.add_bias_dimension) data::augment_bias(dataset);
  dataset.check_invariants();
  return dataset;
}

}  // namespace plos::sensing
