// Linear L1-hinge SVM trained with dual coordinate descent
// (Hsieh et al., ICML 2008 — the liblinear algorithm).
//
// Solves  min_w ½||w||² + C Σ_i max(0, 1 − y_i w·x_i)
// through its dual  min_α ½ αᵀQα − eᵀα, 0 ≤ α_i ≤ C, Q_ij = y_i y_j x_i·x_j,
// keeping w = Σ_i α_i y_i x_i incrementally updated.
//
// The hyperplane passes through the origin, matching the PLOS paper; callers
// wanting an affine decision function append a constant-1 feature
// (see data::augment_bias).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/vector.hpp"
#include "rng/engine.hpp"

namespace plos::svm {

struct LinearSvmOptions {
  double c = 1.0;            ///< hinge-loss weight C (> 0)
  double tolerance = 1e-6;   ///< stop when max projected-gradient violation dips below
  int max_epochs = 1000;     ///< passes over the data
  std::uint64_t seed = 7;    ///< coordinate-order shuffling seed
};

struct LinearSvmModel {
  linalg::Vector weights;

  /// Signed distance proxy w·x.
  double decision_value(std::span<const double> x) const;

  /// Predicted label in {-1, +1} (ties break to +1).
  int predict(std::span<const double> x) const;
};

/// Trains on samples[i] with labels[i] in {-1, +1}.
/// Requires at least one sample of each class to be meaningful, but will
/// happily fit degenerate inputs (the dual is still well-defined).
LinearSvmModel train_linear_svm(const std::vector<linalg::Vector>& samples,
                                std::span<const int> labels,
                                const LinearSvmOptions& options = {});

/// Primal objective ½||w||² + C Σ hinge — used by tests to compare solvers.
double svm_primal_objective(const LinearSvmModel& model,
                            const std::vector<linalg::Vector>& samples,
                            std::span<const int> labels, double c);

}  // namespace plos::svm
