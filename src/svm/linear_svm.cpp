#include "svm/linear_svm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"

namespace plos::svm {

double LinearSvmModel::decision_value(std::span<const double> x) const {
  return linalg::dot(weights, x);
}

int LinearSvmModel::predict(std::span<const double> x) const {
  return decision_value(x) >= 0.0 ? 1 : -1;
}

LinearSvmModel train_linear_svm(const std::vector<linalg::Vector>& samples,
                                std::span<const int> labels,
                                const LinearSvmOptions& options) {
  PLOS_CHECK(samples.size() == labels.size(),
             "train_linear_svm: samples/labels size mismatch");
  PLOS_CHECK(options.c > 0.0, "train_linear_svm: C must be positive");
  for (int y : labels) {
    PLOS_CHECK(y == 1 || y == -1, "train_linear_svm: labels must be +/-1");
  }

  LinearSvmModel model;
  if (samples.empty()) return model;
  const std::size_t dim = samples.front().size();
  for (const auto& x : samples) {
    PLOS_CHECK(x.size() == dim, "train_linear_svm: ragged samples");
  }

  const std::size_t m = samples.size();
  linalg::Vector alpha(m, 0.0);
  linalg::Vector w(dim, 0.0);
  linalg::Vector q_diag(m);
  for (std::size_t i = 0; i < m; ++i) {
    q_diag[i] = linalg::squared_norm(samples[i]);
  }

  rng::Engine engine(options.seed);
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    engine.shuffle(order);
    double max_violation = 0.0;
    for (std::size_t i : order) {
      const double yi = static_cast<double>(labels[i]);
      const double g = yi * linalg::dot(w, samples[i]) - 1.0;
      // Projected gradient for the box constraint 0 <= alpha_i <= C.
      double pg = g;
      if (alpha[i] <= 0.0) pg = std::min(g, 0.0);
      if (alpha[i] >= options.c) pg = std::max(g, 0.0);
      max_violation = std::max(max_violation, std::abs(pg));
      if (pg == 0.0 || q_diag[i] <= 0.0) continue;
      const double alpha_old = alpha[i];
      alpha[i] = std::clamp(alpha_old - g / q_diag[i], 0.0, options.c);
      const double delta = (alpha[i] - alpha_old) * yi;
      if (delta != 0.0) linalg::axpy(delta, samples[i], w);
    }
    if (max_violation < options.tolerance) break;
  }

  model.weights = std::move(w);
  return model;
}

double svm_primal_objective(const LinearSvmModel& model,
                            const std::vector<linalg::Vector>& samples,
                            std::span<const int> labels, double c) {
  PLOS_CHECK(samples.size() == labels.size(),
             "svm_primal_objective: size mismatch");
  double obj = 0.5 * linalg::squared_norm(model.weights);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double margin =
        static_cast<double>(labels[i]) * model.decision_value(samples[i]);
    obj += c * std::max(0.0, 1.0 - margin);
  }
  return obj;
}

}  // namespace plos::svm
