// Metrics registry: named counters, gauges, and fixed-bucket histograms,
// with snapshot-to-JSON export.
//
//   * Counter   — monotonically increasing double (bytes, solves, seconds).
//   * Gauge     — last-written value plus a bounded sample trace, so a
//                 snapshot carries the *trajectory* (objective per CCCP
//                 round, ADMM residuals per iteration), not just the final
//                 scalar.
//   * Histogram — fixed upper-bound buckets plus an overflow bucket, with
//                 count/sum/min/max (QP iteration distributions).
//
// Instruments are created on first lookup and live as long as their
// Registry; `reset_values()` zeroes values but keeps instrument identities,
// so references cached in hot paths (function-local statics against the
// global registry) stay valid across resets.
//
// Recording is gated on the owning registry's enabled flag: a disabled
// registry makes every record call one relaxed atomic load and a branch.
// The global registry (`obs::metrics()`) starts disabled — instrumented
// library code costs nothing until a tool, bench, or test opts in.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace plos::obs {

class Registry;

class Counter {
 public:
  void add(double delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

class Gauge {
 public:
  /// Caps the per-gauge sample trace; the last value is always kept.
  static constexpr std::size_t kMaxSamples = 65536;

  void set(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }
  bool has_value() const { return has_value_.load(std::memory_order_relaxed); }
  std::vector<double> samples() const;
  /// Samples recorded after the trace filled up (the last value is still
  /// tracked, only the trajectory entry was dropped). Nonzero means the
  /// sample trace is a truncated prefix, not the full trajectory —
  /// surfaced in the JSON/Prometheus snapshots so long runs can't misread
  /// a capped trace as complete.
  std::size_t dropped_samples() const;

 private:
  friend class Registry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  std::atomic<double> value_{0.0};
  std::atomic<bool> has_value_{false};
  mutable std::mutex mutex_;
  std::vector<double> samples_;
  std::size_t dropped_ = 0;
  const std::atomic<bool>* enabled_;
};

class Histogram {
 public:
  void record(double value);
  std::size_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  /// Approximate quantile (q clamped to [0, 1]) reconstructed from the
  /// bucket counts, Prometheus-style: the containing bucket is found by
  /// cumulative rank, then the value is linearly interpolated between the
  /// bucket's edges. The tracked min/max tighten the first and overflow
  /// buckets and clamp the result, so q=0 → min(), q=1 → max(). Returns
  /// 0 when the histogram is empty.
  double quantile(double q) const;
  /// Upper bucket bounds, as fixed at creation.
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::size_t> bucket_counts() const;

 private:
  friend class Registry;
  Histogram(const std::atomic<bool>* enabled,
            std::span<const double> bucket_bounds);

  const std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  const std::atomic<bool>* enabled_;
};

/// Bucket bounds suited to iteration counts of the FISTA QP solvers.
std::span<const double> default_iteration_buckets();

class Registry {
 public:
  explicit Registry(bool enabled = true) : enabled_(enabled) {}

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Lookup-or-create. References stay valid for the Registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// On first creation the bucket bounds are fixed from `bucket_bounds`
  /// (must be strictly increasing); later lookups ignore the argument.
  Histogram& histogram(std::string_view name,
                       std::span<const double> bucket_bounds);

  /// Zeroes every instrument's values; instrument identities survive.
  void reset_values();

  /// Snapshot of all instruments as a JSON object:
  /// {"counters":{name:value,…},
  ///  "gauges":{name:{"value":v,"samples":[…]},…},
  ///  "histograms":{name:{"bounds":[…],"counts":[…],"count":n,"sum":s,
  ///                      "min":m,"max":M,"p50":…,"p90":…,"p99":…},…}}
  /// Gauges additionally carry "dropped_samples" when their sample trace
  /// overflowed kMaxSamples. The p50/p90/p99 summaries are bucket-
  /// interpolated quantiles (see Histogram::quantile).
  std::string to_json() const;

  /// Snapshot in the Prometheus text exposition format (version 0.0.4):
  /// counters and gauges as scalar samples, histograms as cumulative
  /// `_bucket{le="…"}` series plus `_sum`/`_count` and bucket-
  /// interpolated `<name>_p50`/`_p90`/`_p99` summary gauges. Instrument
  /// names are sanitized to [a-zA-Z0-9_:] (every other character becomes
  /// '_'); gauges with an overflowed sample trace expose an extra
  /// `<name>_dropped_samples` gauge.
  std::string to_prometheus() const;

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-global registry used by the built-in solver instrumentation.
/// Leaky singleton, created disabled.
Registry& metrics();

}  // namespace plos::obs
