#include "obs/trace.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "obs/profile.hpp"

namespace plos::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Small dense thread ids (Chrome renders one lane per tid).
std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local int span_depth = 0;

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string json_string(std::string_view text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

TraceCollector& TraceCollector::instance() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::set_enabled(bool enabled) {
  if (enabled && !enabled_.load(std::memory_order_relaxed)) {
    epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

double TraceCollector::now_us() const {
  return static_cast<double>(steady_now_ns() -
                             epoch_ns_.load(std::memory_order_relaxed)) *
         1e-3;
}

void TraceCollector::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

void TraceCollector::record(Event event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceCollector::Event> TraceCollector::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string TraceCollector::to_chrome_json() const {
  const std::vector<Event> snapshot = events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const Event& e = snapshot[i];
    if (i > 0) out += ',';
    out += "{\"name\":";
    out += json_string(e.name);
    out += ",\"cat\":\"plos\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += json_number(static_cast<double>(e.tid));
    out += ",\"ts\":";
    out += json_number(e.ts_us);
    out += ",\"dur\":";
    out += json_number(e.dur_us);
    out += ",\"args\":{\"depth\":";
    out += json_number(static_cast<double>(e.depth));
    if (e.has_arg) {
      out += ',';
      out += json_string(e.arg_name);
      out += ':';
      out += json_number(e.arg);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool TraceCollector::write_chrome_json(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = to_chrome_json();
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), file) == json.size();
  return std::fclose(file) == 0 && ok;
}

ScopedSpan::ScopedSpan(const char* name, const char* arg_name, double arg)
    : name_(name), arg_name_(arg_name), arg_(arg) {
  if (Profiler::enabled()) {
    profiled_ = true;
    profile_span_open(name_);
  }
  if (!TraceCollector::enabled()) return;
  active_ = true;
  depth_ = span_depth++;
  start_us_ = TraceCollector::instance().now_us();
}

ScopedSpan::~ScopedSpan() {
  if (profiled_) profile_span_close();
  if (!active_) return;
  --span_depth;
  TraceCollector& collector = TraceCollector::instance();
  TraceCollector::Event event;
  event.name = name_;
  event.ts_us = start_us_;
  event.dur_us = collector.now_us() - start_us_;
  event.tid = current_tid();
  event.depth = depth_;
  if (arg_name_ != nullptr) {
    event.has_arg = true;
    event.arg_name = arg_name_;
    event.arg = arg_;
  }
  collector.record(std::move(event));
}

}  // namespace plos::obs
