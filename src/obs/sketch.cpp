#include "obs/sketch.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace plos::obs {

namespace {

// frexp exponent of a positive finite value: v = m * 2^e with m in
// [0.5, 1). Pure bit extraction — no rounding, no libm log.
int frexp_exponent(double value) {
  int exponent = 0;
  (void)std::frexp(value, &exponent);
  return exponent;
}

}  // namespace

QuantileSketch::QuantileSketch() : QuantileSketch(Spec{}) {}

QuantileSketch::QuantileSketch(const Spec& spec) : spec_(spec) {
  PLOS_CHECK(std::isfinite(spec.min_value) && spec.min_value > 0.0,
             "QuantileSketch: min_value must be positive and finite");
  PLOS_CHECK(std::isfinite(spec.max_value) &&
                 spec.max_value > spec.min_value,
             "QuantileSketch: max_value must exceed min_value");
  PLOS_CHECK(spec.sub_buckets >= 1 && spec.sub_buckets <= 256,
             "QuantileSketch: sub_buckets outside [1, 256]");
  exp_min_ = frexp_exponent(spec.min_value);
  const int exp_max = frexp_exponent(spec.max_value);
  octaves_ = exp_max - exp_min_ + 1;
  // zero + underflow + octave slices + overflow.
  counts_.assign(2 + static_cast<std::size_t>(octaves_) *
                         static_cast<std::size_t>(spec.sub_buckets) +
                     1,
                 0);
}

std::size_t QuantileSketch::bucket_index(double value) const {
  if (value == 0.0) return 0;
  if (value < spec_.min_value) return 1;
  if (value >= spec_.max_value) return counts_.size() - 1;
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);
  // min <= value < max bounds the exponent to the constructed octaves.
  PLOS_DCHECK(exponent >= exp_min_ && exponent < exp_min_ + octaves_,
              "QuantileSketch: exponent escaped the octave range");
  // mantissa in [0.5, 1): (mantissa - 0.5) * 2 in [0, 1), scaled to the
  // per-octave slice index. All operations are exact or correctly rounded
  // the same way on every platform — no transcendental calls.
  const int slice = static_cast<int>((mantissa - 0.5) * 2.0 *
                                     static_cast<double>(spec_.sub_buckets));
  const std::size_t octave = static_cast<std::size_t>(exponent - exp_min_);
  return 2 + octave * static_cast<std::size_t>(spec_.sub_buckets) +
         static_cast<std::size_t>(slice);
}

double QuantileSketch::bucket_lower_edge(std::size_t index) const {
  if (index == 0) return 0.0;
  if (index == 1) return spec_.min_value * 0.5;  // deterministic stand-in
  if (index == counts_.size() - 1) return spec_.max_value;
  const std::size_t flat = index - 2;
  const std::size_t sub = static_cast<std::size_t>(spec_.sub_buckets);
  const int exponent = exp_min_ + static_cast<int>(flat / sub);
  const double slice = static_cast<double>(flat % sub);
  const double mantissa =
      0.5 + slice / (2.0 * static_cast<double>(spec_.sub_buckets));
  return std::ldexp(mantissa, exponent);
}

void QuantileSketch::record(double value, std::uint64_t weight) {
  PLOS_CHECK(std::isfinite(value) && value >= 0.0,
             "QuantileSketch: value must be finite and non-negative, got "
                 << value);
  counts_[bucket_index(value)] += weight;
  total_ += weight;
}

bool QuantileSketch::same_spec(const QuantileSketch& other) const {
  return spec_.min_value == other.spec_.min_value &&
         spec_.max_value == other.spec_.max_value &&
         spec_.sub_buckets == other.spec_.sub_buckets;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  PLOS_CHECK(same_spec(other), "QuantileSketch: merging mismatched specs");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

QuantileSketch QuantileSketch::diff(const QuantileSketch& earlier) const {
  PLOS_CHECK(same_spec(earlier), "QuantileSketch: diffing mismatched specs");
  QuantileSketch out(spec_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    PLOS_CHECK(counts_[i] >= earlier.counts_[i],
               "QuantileSketch: diff against a non-prefix sketch");
    out.counts_[i] = counts_[i] - earlier.counts_[i];
  }
  out.total_ = total_ - earlier.total_;
  return out;
}

double QuantileSketch::quantile(double q) const {
  if (total_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested order statistic among count() samples; floor
  // keeps the choice integral and order-independent.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative > rank) return bucket_lower_edge(i);
  }
  return bucket_lower_edge(counts_.size() - 1);
}

CauseCounters::CauseCounters(std::size_t num_causes)
    : counts_(num_causes, 0) {
  PLOS_CHECK(num_causes > 0, "CauseCounters: need at least one cause");
}

void CauseCounters::add(std::size_t cause, std::uint64_t weight) {
  PLOS_CHECK(cause < counts_.size(),
             "CauseCounters: cause " << cause << " out of range");
  counts_[cause] += weight;
}

void CauseCounters::merge(const CauseCounters& other) {
  PLOS_CHECK(counts_.size() == other.counts_.size(),
             "CauseCounters: merging mismatched cause sets");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

std::uint64_t CauseCounters::total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts_) total += c;
  return total;
}

}  // namespace plos::obs
