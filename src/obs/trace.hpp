// Scoped trace spans serialized to Chrome trace-event JSON.
//
//   void solve() {
//     PLOS_SPAN("qp_solve");                 // or with one numeric arg:
//     PLOS_SPAN("device_solve", "device", t);
//     …
//   }
//
// Spans nest lexically: each records its name, thread, depth, start time,
// and wall duration into the global TraceCollector when the scope exits.
// The collector serializes complete ("ph":"X") events loadable by
// chrome://tracing and Perfetto.
//
// Thread safety: spans may open and close on any thread. The nesting depth
// is thread-local, every event carries the recording thread's dense id (so
// Perfetto renders one track per pool worker), the event vector is mutex-
// guarded, and the epoch is an atomic timestamp so set_enabled() cannot
// race against in-flight now_us() reads.
//
// Collection is off by default: a PLOS_SPAN in a cold collector costs one
// relaxed atomic load and a branch. Enabling mid-process is safe; spans
// already open stay inactive, new ones record.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace plos::obs {

/// Process-global span store (leaky singleton).
class TraceCollector {
 public:
  struct Event {
    std::string name;
    double ts_us = 0.0;   ///< start, µs since the collector epoch
    double dur_us = 0.0;  ///< wall duration in µs
    std::uint32_t tid = 0;
    int depth = 0;  ///< nesting depth at the span's open (0 = top level)
    bool has_arg = false;
    std::string arg_name;
    double arg = 0.0;
  };

  static TraceCollector& instance();

  static bool enabled() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }

  /// Enabling (re)starts the epoch clock; disabling keeps recorded events.
  void set_enabled(bool enabled);
  void clear();

  /// Microseconds since the epoch set by the last enable. Safe to call
  /// concurrently with set_enabled().
  double now_us() const;

  void record(Event event);
  std::vector<Event> events() const;

  /// {"displayTimeUnit":"ms","traceEvents":[…]} — chrome://tracing format.
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`; false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  TraceCollector() = default;

  std::atomic<bool> enabled_{false};
  /// steady_clock nanoseconds captured at the last enable; atomic so spans
  /// reading the clock never race a concurrent re-enable.
  std::atomic<std::int64_t> epoch_ns_{0};
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

/// RAII span. Prefer the PLOS_SPAN macro; the class is public so spans can
/// be opened/closed at non-lexical boundaries when needed.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, nullptr, 0.0) {}
  ScopedSpan(const char* name, const char* arg_name, double arg);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* arg_name_;
  double arg_;
  double start_us_ = 0.0;
  int depth_ = 0;
  bool active_ = false;
  /// Spans also feed the aggregating Profiler (obs/profile.hpp) when it
  /// is enabled; tracked separately from active_ so enabling either
  /// collector mid-span keeps open/close calls paired.
  bool profiled_ = false;
};

}  // namespace plos::obs

#define PLOS_SPAN_CONCAT_INNER(a, b) a##b
#define PLOS_SPAN_CONCAT(a, b) PLOS_SPAN_CONCAT_INNER(a, b)
/// PLOS_SPAN("name") or PLOS_SPAN("name", "arg_name", numeric_value).
#define PLOS_SPAN(...) \
  ::plos::obs::ScopedSpan PLOS_SPAN_CONCAT(plos_span_, __LINE__)(__VA_ARGS__)
