// Deterministic, mergeable, bounded-memory distribution aggregates.
//
// ROADMAP item 1 demands telemetry whose memory does not grow with fleet
// size: a million-user round cannot journal a million staleness ages. The
// sketch replaces any O(users) row with an O(buckets) histogram that still
// answers quantile queries (p50/p90/p99) deterministically.
//
// Determinism contract (DESIGN.md §15):
//   * Bucketing is exact bit arithmetic — std::frexp/std::ldexp decompose
//     a value into (mantissa, exponent) without touching libm's log, so
//     the same value lands in the same bucket on every platform and every
//     compiler flag set this repo builds with.
//   * merge() is element-wise integer addition, which commutes: any
//     merge order, any partition of the samples across threads, and any
//     thread count produce the same counts, hence byte-identical journal
//     lines. diff() inverts merge for per-round deltas of a cumulative
//     sketch.
//   * quantile() walks the counts and returns the bucket's lower edge
//     (reconstructed with std::ldexp) — a pure function of the counts,
//     never of insertion order.
//
// Memory is fixed at construction: O(octaves * sub_buckets), independent
// of how many values are recorded (each bucket is a saturating-free
// uint64 count). This file is inside the plos_lint cache-purity scope:
// no clocks, no std::hash, no unordered containers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace plos::obs {

/// Fixed-log-bucket quantile sketch over non-negative values.
///
/// Layout: [exact zero][underflow (0, min)) [octave buckets) [overflow].
/// Each power-of-two octave in [min, max) is split into `sub_buckets`
/// equal mantissa slices, giving a relative bucket width of
/// 1 / sub_buckets (≤ 12.5% at the default 8).
class QuantileSketch {
 public:
  struct Spec {
    double min_value = 1e-4;  ///< smallest resolved value (power of 2 ideal)
    double max_value = 1e4;   ///< values >= this land in the overflow bucket
    int sub_buckets = 8;      ///< mantissa slices per octave
  };

  /// Default spec ({1e-4, 1e4, 8}); defined out of line because a nested
  /// Spec{} default argument is ill-formed before the class is complete.
  QuantileSketch();
  explicit QuantileSketch(const Spec& spec);

  const Spec& spec() const { return spec_; }

  /// Records one sample. `value` must be finite and >= 0.
  void record(double value, std::uint64_t weight = 1);

  /// Element-wise count addition; specs must match. Commutative and
  /// associative, so any merge tree over any partition of the samples
  /// yields identical counts.
  void merge(const QuantileSketch& other);

  /// Element-wise count subtraction (inverse of merge): the per-round
  /// delta of a cumulative sketch. `earlier` must be a prefix — every
  /// bucket count of `earlier` must be <= this sketch's.
  QuantileSketch diff(const QuantileSketch& earlier) const;

  /// Total recorded weight.
  std::uint64_t count() const { return total_; }
  bool empty() const { return total_ == 0; }

  /// Deterministic quantile estimate for q in [0, 1]: the lower edge of
  /// the bucket containing the rank-floor(q * (count - 1)) sample
  /// (0 for the zero bucket, min/2 for the underflow bucket, max for the
  /// overflow bucket). Returns 0 when the sketch is empty.
  double quantile(double q) const;

  /// Raw bucket counts (zero, underflow, octave slices..., overflow).
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Bytes held by the counts array — fixed at construction, independent
  /// of count(); the O(buckets) memory claim, testable.
  std::size_t memory_bytes() const {
    return counts_.capacity() * sizeof(std::uint64_t);
  }

  /// True when the two sketches share a bucket layout (merge/diff
  /// compatible).
  bool same_spec(const QuantileSketch& other) const;

 private:
  std::size_t bucket_index(double value) const;
  double bucket_lower_edge(std::size_t index) const;

  Spec spec_;
  int exp_min_ = 0;  ///< frexp exponent of the first octave
  int octaves_ = 0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Per-cause event counters keyed by a small dense enum (the journal uses
/// core::DeviceRoundStatus). Merge is element-wise addition — the same
/// order/thread-count invariance argument as QuantileSketch — and memory
/// is O(causes), independent of fleet size.
class CauseCounters {
 public:
  explicit CauseCounters(std::size_t num_causes);

  void add(std::size_t cause, std::uint64_t weight = 1);
  void merge(const CauseCounters& other);

  std::uint64_t total() const;
  const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace plos::obs
