// Convergence watchdog: online violation detection over the round journal.
//
// Federated-personalization loops fail in characteristic ways — a NaN in
// the objective from a blown-up QP, a stall where rounds stop improving,
// outright divergence of the objective or the ADMM residuals, and (under
// fault injection) a participation collapse where most devices silently
// stop reaching the server. The watchdog is a policy object fed every
// RoundRecord as it is produced; it classifies violations, fires
// structured log events, bumps `plos.watchdog.*` metrics, and — when
// configured with OnViolation::kAbort — tells the trainer to stop the run
// at the next safe point instead of burning rounds on a doomed trajectory.
//
// Detection is purely a function of the observed record sequence, so a
// watchdogged run stays bitwise-deterministic at any thread count, and
// the same policies can be replayed offline over a journal file
// (`plos_inspect report` does exactly that).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/journal.hpp"

namespace plos::obs {

enum class WatchdogAction {
  kNone,   ///< record looked healthy
  kWarn,   ///< violation detected, training may continue
  kAbort,  ///< violation detected and policy says stop the run
};

enum class ViolationKind {
  kNonFinite,      ///< NaN/Inf objective or residual
  kStall,          ///< no objective improvement over stall_rounds records
  kDivergence,     ///< objective or residual growth beyond tolerance
  kParticipation,  ///< participation rate below floor for too many rounds
  kStaleness,      ///< max server-block staleness at/above ceiling too long
};

const char* violation_kind_name(ViolationKind kind);

struct WatchdogViolation {
  ViolationKind kind;
  std::size_t record_index;  ///< 0-based index of the offending record
  std::string message;       ///< human-readable diagnostic
};

struct WatchdogConfig {
  enum class OnViolation { kWarn, kAbort };
  /// What a detected violation does to the run. Warn-only by default:
  /// telemetry must never change training behavior unless asked to.
  OnViolation on_violation = OnViolation::kWarn;

  /// Stall: no new best objective over this many consecutive records.
  /// 0 disables stall detection (ADMM objectives wiggle by design; enable
  /// per-experiment with a budget that fits the solver's horizon).
  int stall_rounds = 0;
  /// Relative improvement below this does not count as progress.
  double stall_tolerance = 1e-9;

  /// Divergence: objective exceeding divergence_factor * (1 + |best|)
  /// after at least one finite objective was seen. <= 0 disables.
  double divergence_factor = 100.0;
  /// Divergence of the ADMM primal residual relative to the best residual
  /// seen so far (growth by this factor). <= 0 disables.
  double residual_divergence_factor = 1e4;

  /// Participation collapse: participation_rate below the floor for
  /// participation_rounds consecutive records. Floor <= 0 disables.
  double participation_floor = 0.0;
  int participation_rounds = 3;

  /// Staleness collapse (async quorum engine): max_staleness at or above
  /// this ceiling for staleness_rounds consecutive records means the
  /// server keeps aggregating around the same dead blocks — the quorum is
  /// met by a fast subset while the rest of the fleet never lands an
  /// upload. 0 disables (the synchronous engine never evicts, so stale
  /// blocks there are ordinary non-participation). When a record carries a
  /// tuned_staleness_bound (> 0, from the --auto-tune controller), that
  /// per-record bound replaces this static ceiling — the watchdog follows
  /// the knob in force instead of false-firing while the bound widens.
  std::uint64_t staleness_ceiling = 0;
  int staleness_rounds = 3;
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogConfig config = {});

  /// Feeds one record; returns the action the policy demands for it.
  /// Also logs (warn/error) and bumps plos.watchdog.* metrics when a
  /// violation fires.
  WatchdogAction observe(const RoundRecord& record);

  const WatchdogConfig& config() const { return config_; }
  bool triggered() const { return !violations_.empty(); }
  /// True once a violation fired under OnViolation::kAbort; trainers poll
  /// this at round boundaries.
  bool should_abort() const { return abort_; }
  const std::vector<WatchdogViolation>& violations() const {
    return violations_;
  }
  std::size_t records_seen() const { return records_seen_; }

  /// "ok" (nothing fired), "warn" (violations, run completed), or
  /// "abort" (a violation stopped the run).
  const char* verdict() const;

 private:
  WatchdogAction report(ViolationKind kind, std::string message);

  WatchdogConfig config_;
  std::size_t records_seen_ = 0;
  bool abort_ = false;

  bool has_best_objective_ = false;
  double best_objective_ = 0.0;
  int records_since_improvement_ = 0;

  bool has_best_residual_ = false;
  double best_primal_residual_ = 0.0;

  int low_participation_streak_ = 0;
  int high_staleness_streak_ = 0;

  std::vector<WatchdogViolation> violations_;
};

/// Replays a journal through a fresh watchdog (for offline analysis of a
/// journal file); returns the watchdog in its final state.
Watchdog replay_watchdog(const std::vector<RoundRecord>& records,
                         const WatchdogConfig& config);

}  // namespace plos::obs
