#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "common/assert.hpp"

namespace plos::obs {

namespace {

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string json_string(std::string_view text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

template <typename Value>
std::string json_array(const std::vector<Value>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += json_number(static_cast<double>(values[i]));
  }
  out += ']';
  return out;
}

}  // namespace

void Gauge::set(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  value_.store(value, std::memory_order_relaxed);
  has_value_.store(true, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (samples_.size() < kMaxSamples) {
    samples_.push_back(value);
  } else {
    ++dropped_;
  }
}

std::vector<double> Gauge::samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

std::size_t Gauge::dropped_samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::span<const double> bucket_bounds)
    : bounds_(bucket_bounds.begin(), bucket_bounds.end()),
      counts_(bounds_.size() + 1, 0),
      enabled_(enabled) {
  PLOS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                 std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
             "Histogram: bucket bounds must be strictly increasing");
}

void Histogram::record(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  const std::size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[bucket];
  sum_ += value;
  min_ = total_ == 0 ? value : std::min(min_, value);
  max_ = total_ == 0 ? value : std::max(max_, value);
  ++total_;
}

std::size_t Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

double Histogram::sum() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

std::vector<std::size_t> Histogram::bucket_counts() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

double Histogram::quantile(double q) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (total_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double rank = q * static_cast<double>(total_);
  std::size_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double reached = static_cast<double>(cumulative + counts_[b]);
    if (reached >= rank) {
      // Bucket b covers (bounds_[b-1], bounds_[b]]; min_/max_ tighten the
      // open-ended first and overflow buckets.
      const double lower = b == 0 ? min_ : std::max(min_, bounds_[b - 1]);
      const double upper =
          b < bounds_.size() ? std::min(max_, bounds_[b]) : max_;
      const double fraction = (rank - static_cast<double>(cumulative)) /
                              static_cast<double>(counts_[b]);
      return std::clamp(lower + (upper - lower) * fraction, min_, max_);
    }
    cumulative += counts_[b];
  }
  return max_;
}

std::span<const double> default_iteration_buckets() {
  static constexpr std::array<double, 12> kBuckets = {
      1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000};
  return kBuckets;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bucket_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<Histogram>(
                                             new Histogram(&enabled_,
                                                           bucket_bounds)))
             .first;
  }
  return *it->second;
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->value_.store(0.0, std::memory_order_relaxed);
    gauge->has_value_.store(false, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> gauge_lock(gauge->mutex_);
    gauge->samples_.clear();
    gauge->dropped_ = 0;
  }
  for (auto& [name, histogram] : histograms_) {
    const std::lock_guard<std::mutex> histogram_lock(histogram->mutex_);
    std::fill(histogram->counts_.begin(), histogram->counts_.end(), 0);
    histogram->total_ = 0;
    histogram->sum_ = 0.0;
    histogram->min_ = 0.0;
    histogram->max_ = 0.0;
  }
}

std::string Registry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += json_string(name);
    out += ':';
    out += json_number(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += json_string(name);
    out += ":{\"value\":";
    out += json_number(gauge->value());
    out += ",\"samples\":";
    out += json_array(gauge->samples());
    out += ",\"dropped_samples\":";
    out += json_number(static_cast<double>(gauge->dropped_samples()));
    out += '}';
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += json_string(name);
    out += ":{\"bounds\":";
    out += json_array(histogram->bounds());
    out += ",\"counts\":";
    out += json_array(histogram->bucket_counts());
    out += ",\"count\":";
    out += json_number(static_cast<double>(histogram->count()));
    out += ",\"sum\":";
    out += json_number(histogram->sum());
    out += ",\"min\":";
    out += json_number(histogram->min());
    out += ",\"max\":";
    out += json_number(histogram->max());
    out += ",\"p50\":";
    out += json_number(histogram->quantile(0.50));
    out += ",\"p90\":";
    out += json_number(histogram->quantile(0.90));
    out += ",\"p99\":";
    out += json_number(histogram->quantile(0.99));
    out += '}';
  }
  out += "}}";
  return out;
}

namespace {

// Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's
// dotted names map onto that by replacing every other character with '_'.
std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9' && !out.empty()) || c == '_' ||
                    c == ':';
    out += ok ? c : '_';
  }
  // push_back rather than operator=(const char*): the latter trips a GCC 12
  // -Wrestrict false positive (PR105329) under -Werror.
  if (out.empty()) out.push_back('_');
  return out;
}

// Prometheus floats: standard decimal rendering plus +Inf/-Inf/NaN.
std::string prometheus_number(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string Registry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  // The exposition format demands exactly one # HELP / # TYPE header per
  // metric family. Distinct dotted registry names can collapse onto the
  // same family after sanitization (every non-admitted character becomes
  // '_'), so headers are deduplicated across the whole dump.
  std::set<std::string> headered;
  const auto header = [&](const std::string& family, const char* type,
                          const std::string& help) {
    if (!headered.insert(family).second) return;
    out += "# HELP " + family + " " + help + "\n";
    out += "# TYPE " + family + " ";
    out += type;
    out += "\n";
  };
  for (const auto& [name, counter] : counters_) {
    const std::string metric = prometheus_name(name);
    header(metric, "counter", "Registry counter " + name + ".");
    out += metric + " " + prometheus_number(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string metric = prometheus_name(name);
    header(metric, "gauge", "Registry gauge " + name + ".");
    out += metric + " " + prometheus_number(gauge->value()) + "\n";
    const std::size_t dropped = gauge->dropped_samples();
    if (dropped > 0) {
      header(metric + "_dropped_samples", "gauge",
             "Samples dropped by gauge " + name + ".");
      out += metric + "_dropped_samples " +
             prometheus_number(static_cast<double>(dropped)) + "\n";
    }
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string metric = prometheus_name(name);
    header(metric, "histogram", "Registry histogram " + name + ".");
    const auto& bounds = histogram->bounds();
    const auto counts = histogram->bucket_counts();
    std::size_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out += metric + "_bucket{le=\"" + prometheus_number(bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    cumulative += counts.back();
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += metric + "_sum " + prometheus_number(histogram->sum()) + "\n";
    out += metric + "_count " + std::to_string(histogram->count()) + "\n";
    // Prometheus histograms carry no server-side quantiles; export the
    // bucket-interpolated summaries as one labeled companion gauge family
    // (a single # TYPE for all three series, per the format).
    const std::pair<const char*, double> kQuantiles[] = {
        {"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}};
    header(metric + "_quantile", "gauge",
           "Bucket-interpolated quantiles of histogram " + name + ".");
    for (const auto& [label, q] : kQuantiles) {
      out += metric + "_quantile{q=\"" + label + "\"} " +
             prometheus_number(histogram->quantile(q)) + "\n";
    }
  }
  return out;
}

Registry& metrics() {
  static Registry* registry = new Registry(/*enabled=*/false);
  return *registry;
}

}  // namespace plos::obs
