// Flight recorder: causal per-device lifecycle events on the simulated
// clock.
//
// The journal answers "how did the round go" with bounded aggregates; the
// flight recorder answers "what happened to device 17" — bootstrap, upload
// attempt k (with its retry/backoff, drop, or corruption outcome), deadline
// miss, late fold with the staleness at fold time, eviction with its cause,
// and the server-side quorum cut / aggregate the upload fed into.
//
// Determinism contract (DESIGN.md §15): events are recorded only on the
// aggregation thread, in ascending device order within a round, with ids
// that are pure functions of (round, device, attempt) — so a flight log is
// byte-identical at any thread count, like the journal. Memory is a
// bounded ring buffer: when full, the oldest events are overwritten and
// counted in dropped(), never reallocated.
//
// Export is Chrome trace format (loadable in Perfetto / chrome://tracing):
// one "X" duration slice per event on the device's track (tid = device+1;
// tid 0 = server), plus flow events ("s" -> "t" -> "f") linking each fresh
// upload to the quorum cut and the server aggregate it landed in. The raw
// virtual-clock seconds ride in args so parse_flight_json() round-trips
// events exactly (Chrome's microsecond ts field is lossy).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace plos::obs {

enum class FlightEventKind : int {
  kBootstrap = 0,      ///< device contributed to the bootstrap average
  kUploadAttempt = 1,  ///< one uplink attempt; cause = AttemptResult
  kDeadlineMiss = 2,   ///< upload outlived its per-device deadline
  kQuorumCut = 3,      ///< server event: round cut (staleness = quorum size)
  kLateFold = 4,       ///< cached upload folded; staleness = age at fold
  kEviction = 5,       ///< server block reset; cause = DeviceRoundStatus
  kAggregate = 6,      ///< server event: Eq. 23 update applied
};

/// Outcome of one upload attempt (FlightEventKind::kUploadAttempt cause).
enum class AttemptResult : int {
  kDelivered = 0,
  kDropped = 1,    ///< fault schedule lost the frame in transit
  kCorrupted = 2,  ///< CRC rejected the frame at the receiver
};

/// Device index used for server-side events (quorum cut, aggregate).
inline constexpr std::uint32_t kFlightServerDevice = 0xFFFFFFFFu;

struct FlightEvent {
  std::uint64_t round = 0;    ///< aggregation step of the event
  std::uint32_t device = kFlightServerDevice;
  std::uint32_t attempt = 0;  ///< uplink attempt index; 0 otherwise
  FlightEventKind kind = FlightEventKind::kUploadAttempt;
  int cause = 0;         ///< AttemptResult or core::DeviceRoundStatus
  double t_start = 0.0;  ///< virtual seconds
  double t_end = 0.0;    ///< virtual seconds, >= t_start
  std::uint64_t staleness = 0;  ///< age at fold/eviction; quorum at cut

  /// Deterministic id keyed on (round, device, attempt) — the flow-event
  /// id linking a device upload to its quorum cut and aggregate.
  std::uint64_t id() const {
    return (round << 32) | (static_cast<std::uint64_t>(device & 0xFFFFFFu)
                            << 8) |
           static_cast<std::uint64_t>(attempt & 0xFFu);
  }
};

/// Slice name used in the Chrome trace for a kind ("upload_attempt", ...).
std::string_view flight_kind_name(FlightEventKind kind);

/// Bounded ring buffer of flight events with Chrome-trace export.
class FlightRecorder {
 public:
  /// `capacity` bounds memory: the ring holds at most this many events and
  /// overwrites the oldest beyond it.
  explicit FlightRecorder(std::size_t capacity = 1u << 16);

  /// Appends one event (aggregation thread only; see file comment).
  void record(const FlightEvent& event);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }

  /// Retained events, oldest first.
  std::vector<FlightEvent> events() const;

  /// Chrome trace JSON ({"traceEvents": [...]}) with duration slices and
  /// upload -> quorum-cut -> aggregate flow events.
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path` ("-" = stdout). False on I/O
  /// failure.
  bool write(const std::string& path) const;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< overwrite cursor once the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<FlightEvent> ring_;
};

/// Parses a Chrome trace produced by to_chrome_json() back into events
/// (flow and metadata entries are skipped; the raw seconds in args make
/// the round trip exact). Returns false (and sets `error` when non-null)
/// on malformed input.
bool parse_flight_json(std::string_view text, std::vector<FlightEvent>& out,
                       std::string* error = nullptr);

}  // namespace plos::obs
