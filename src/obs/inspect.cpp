#include "obs/inspect.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace plos::obs {

namespace {

std::string render_leaf(const json::Value& value) {
  return value.to_json();
}

bool leaves_match(const json::Value& a, const json::Value& b,
                  double tolerance) {
  if (a.type() != b.type()) {
    // null-vs-number is a real difference; nothing else to relax here.
    return false;
  }
  switch (a.type()) {
    case json::Value::Type::kNumber: {
      const double x = a.as_number();
      const double y = b.as_number();
      if (std::isnan(x) && std::isnan(y)) return true;
      if (!std::isfinite(x) || !std::isfinite(y)) return x == y;
      const double scale = std::max({1.0, std::abs(x), std::abs(y)});
      return std::abs(x - y) <= tolerance * scale;
    }
    case json::Value::Type::kBool:
      return a.as_bool() == b.as_bool();
    case json::Value::Type::kString:
      return a.as_string() == b.as_string();
    default:
      return true;  // null == null
  }
}

bool ignored(const std::string& path, const DiffOptions& options) {
  for (const std::string& prefix : options.ignored_prefixes) {
    if (path.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

}  // namespace

DiffResult diff_values(const json::Value& left, const json::Value& right,
                       const DiffOptions& options) {
  const auto left_leaves = json::flatten(left);
  const auto right_leaves = json::flatten(right);
  std::map<std::string, const json::Value*> right_by_path;
  for (const auto& [path, value] : right_leaves) {
    right_by_path.emplace(path, &value);
  }

  DiffResult result;
  for (const auto& [path, value] : left_leaves) {
    if (ignored(path, options)) continue;
    ++result.fields_compared;
    const auto it = right_by_path.find(path);
    if (it == right_by_path.end()) {
      result.differences.push_back({path, render_leaf(value), "<missing>"});
      continue;
    }
    const auto tol_it = options.field_tolerances.find(path);
    const double tolerance = tol_it != options.field_tolerances.end()
                                 ? tol_it->second
                                 : options.tolerance;
    if (!leaves_match(value, *it->second, tolerance)) {
      result.differences.push_back(
          {path, render_leaf(value), render_leaf(*it->second)});
    }
    right_by_path.erase(it);
  }
  // Whatever survives in right_by_path exists only on the right side.
  for (const auto& [path, value] : right_by_path) {
    if (ignored(path, options)) continue;
    ++result.fields_compared;
    result.differences.push_back({path, "<missing>", render_leaf(*value)});
  }
  std::sort(result.differences.begin(), result.differences.end(),
            [](const DiffEntry& a, const DiffEntry& b) {
              return a.path < b.path;
            });
  return result;
}

DiffOptions default_diff_options() {
  DiffOptions options;
  options.tolerance = 0.0;
  options.ignored_prefixes = {"timing."};
  return options;
}

DiffOptions default_check_options() {
  DiffOptions options;
  options.tolerance = 1e-6;
  options.ignored_prefixes = {"timing.", "build.", "dataset.content_hash"};
  // Async-quorum manifest results are deterministic, but the two derived
  // ratios pass through a division in the reporting layer; give them a
  // tight non-zero tolerance so a libm difference can't fail a check that
  // the underlying integer ledgers pass.
  options.field_tolerances["results.async_mean_quorum"] = 1e-9;
  options.field_tolerances["results.async_virtual_seconds"] = 1e-9;
  return options;
}

namespace {

void append_line(std::string& out, const std::string& line) {
  out += line;
  out += '\n';
}

std::string format_number(double value) {
  if (!std::isfinite(value)) return std::isnan(value) ? "nan" : "inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

void report_manifest(std::string& out, const json::Value& manifest) {
  const auto field_string = [&manifest](const char* a,
                                        const char* b) -> std::string {
    const json::Value* section = manifest.find(a);
    const json::Value* leaf =
        b == nullptr ? section : (section != nullptr ? section->find(b)
                                                     : nullptr);
    if (leaf == nullptr) return "?";
    if (leaf->is_string()) return leaf->as_string();
    if (leaf->is_number()) return format_number(leaf->as_number());
    return leaf->to_json();
  };

  append_line(out, "manifest:");
  append_line(out, "  tool        " + field_string("tool", nullptr) +
                       " (seed " + field_string("seed", nullptr) + ")");
  append_line(out, "  dataset     " + field_string("dataset", "name") + ": " +
                       field_string("dataset", "users") + " users, " +
                       field_string("dataset", "providers") + " providers, " +
                       field_string("dataset", "samples") + " samples, dim " +
                       field_string("dataset", "dim") + ", hash " +
                       field_string("dataset", "content_hash"));
  append_line(out, "  watchdog    " + field_string("watchdog", "verdict") +
                       " (" + field_string("watchdog", "violations") +
                       " violations)");
  const json::Value* first = manifest.find("watchdog");
  if (first != nullptr) {
    const json::Value* message = first->find("first_violation");
    if (message != nullptr && message->is_string() &&
        !message->as_string().empty()) {
      append_line(out, "  violation   " + message->as_string());
    }
  }
  if (const json::Value* results = manifest.find("results");
      results != nullptr && results->is_object()) {
    append_line(out, "  results:");
    for (const auto& [key, value] : results->as_object()) {
      if (!value.is_number()) continue;
      char line[160];
      std::snprintf(line, sizeof(line), "    %-32s %s", key.c_str(),
                    format_number(value.as_number()).c_str());
      append_line(out, line);
    }
  }
  if (const json::Value* timing = manifest.find("timing");
      timing != nullptr && timing->is_object()) {
    append_line(out, "  timing:");
    for (const auto& [key, value] : timing->as_object()) {
      if (!value.is_number()) continue;
      char line[160];
      std::snprintf(line, sizeof(line), "    %-32s %s", key.c_str(),
                    format_number(value.as_number()).c_str());
      append_line(out, line);
    }
  }
}

void report_journal(std::string& out,
                    const std::vector<RoundRecord>& journal) {
  append_line(out, "journal: " + std::to_string(journal.size()) + " records");
  if (journal.empty()) return;

  double first_objective = RoundRecord::kUnset;
  double final_objective = RoundRecord::kUnset;
  double best_objective = RoundRecord::kUnset;
  bool any_nonfinite = false;
  double final_primal = RoundRecord::kUnset;
  double final_dual = RoundRecord::kUnset;
  double participation_sum = 0.0, participation_min = 2.0;
  std::size_t participation_count = 0;
  std::uint64_t bytes_down = 0, bytes_up = 0, dropped = 0, retries = 0;
  int qp_solves = 0;
  long long qp_iterations = 0;
  int max_cccp = 0;
  std::uint64_t quorum_sum = 0, quorum_min = 0, quorum_records = 0;
  std::uint64_t late_uploads = 0, evictions = 0, max_staleness = 0;

  for (const RoundRecord& r : journal) {
    if (!r.objective_finite ||
        (!std::isnan(r.objective) && !std::isfinite(r.objective))) {
      any_nonfinite = true;
    }
    if (r.objective_finite && std::isfinite(r.objective)) {
      if (std::isnan(first_objective)) first_objective = r.objective;
      final_objective = r.objective;
      if (std::isnan(best_objective) || r.objective < best_objective) {
        best_objective = r.objective;
      }
    }
    if (!std::isnan(r.primal_residual)) final_primal = r.primal_residual;
    if (!std::isnan(r.dual_residual)) final_dual = r.dual_residual;
    if (!std::isnan(r.participation_rate)) {
      participation_sum += r.participation_rate;
      participation_min = std::min(participation_min, r.participation_rate);
      ++participation_count;
    }
    bytes_down += r.bytes_to_devices;
    bytes_up += r.bytes_to_server;
    dropped += r.messages_dropped;
    retries += r.retries;
    qp_solves += r.qp_solves;
    qp_iterations += r.qp_iterations;
    max_cccp = std::max(max_cccp, r.cccp_round);
    if (r.quorum_size > 0) {
      quorum_sum += r.quorum_size;
      quorum_min =
          quorum_records == 0 ? r.quorum_size : std::min(quorum_min,
                                                         r.quorum_size);
      ++quorum_records;
    }
    late_uploads += r.late_uploads;
    evictions +=
        r.evictions_offline + r.evictions_late + r.evictions_failed;
    max_staleness = std::max(max_staleness, r.max_staleness);
  }

  append_line(out, "  trainer     " + journal.front().trainer + ", " +
                       std::to_string(max_cccp + 1) + " CCCP round(s)");
  append_line(out, "  objective   first " + format_number(first_objective) +
                       "  best " + format_number(best_objective) +
                       "  final " + format_number(final_objective) +
                       (any_nonfinite ? "  [NON-FINITE VALUES PRESENT]" : ""));
  if (!std::isnan(final_primal)) {
    append_line(out, "  residuals   final primal " +
                         format_number(final_primal) + "  final dual " +
                         format_number(final_dual));
  }
  if (participation_count > 0) {
    append_line(
        out,
        "  particip.   mean " +
            format_number(participation_sum /
                          static_cast<double>(participation_count)) +
            "  min " + format_number(participation_min));
  }
  if (quorum_records > 0) {
    append_line(
        out,
        "  quorum      mean " +
            format_number(static_cast<double>(quorum_sum) /
                          static_cast<double>(quorum_records)) +
            " fresh uploads/step  min " + std::to_string(quorum_min) +
            "  late " + std::to_string(late_uploads) + "  evicted " +
            std::to_string(evictions));
    append_line(out,
                "  staleness   max " + std::to_string(max_staleness) +
                    " step(s)");
  }
  append_line(out, "  qp          " + std::to_string(qp_solves) +
                       " solves, " + std::to_string(qp_iterations) +
                       " iterations");
  if (bytes_down + bytes_up > 0) {
    append_line(out, "  traffic     " + std::to_string(bytes_down) +
                         " B down, " + std::to_string(bytes_up) +
                         " B up, " + std::to_string(dropped) + " dropped, " +
                         std::to_string(retries) + " retries");
  }
}

}  // namespace

std::string convergence_report(const json::Value* manifest,
                               const std::vector<RoundRecord>* journal) {
  std::string out;
  if (manifest != nullptr) report_manifest(out, *manifest);
  if (journal != nullptr) report_journal(out, *journal);
  if (out.empty()) out = "nothing to report\n";
  return out;
}

// ---- bench baseline comparison -------------------------------------------

namespace {

const json::Object* object_field(const json::Value& value,
                                 std::string_view key) {
  const json::Value* field = value.find(key);
  return field != nullptr && field->is_object() ? &field->as_object()
                                                : nullptr;
}

double number_field(const json::Value& value, std::string_view key,
                    double fallback) {
  const json::Value* field = value.find(key);
  return field != nullptr && field->is_number() ? field->as_number()
                                                : fallback;
}

std::string string_field(const json::Value& value, std::string_view key) {
  const json::Value* field = value.find(key);
  return field != nullptr && field->is_string() ? field->as_string() : "";
}

std::string format_ms(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

}  // namespace

BenchCheckResult bench_check(const json::Value& run,
                             const json::Value& baseline,
                             const BenchCheckOptions& options) {
  BenchCheckResult result;
  const std::string run_name = string_field(run, "name");
  const std::string baseline_name = string_field(baseline, "name");
  if (run_name != baseline_name) {
    result.violations.push_back("suite name mismatch: run '" + run_name +
                                "' vs baseline '" + baseline_name + "'");
  }
  const double run_schema = number_field(run, "schema_version", -1.0);
  const double baseline_schema = number_field(baseline, "schema_version", -1.0);
  if (run_schema != baseline_schema) {
    result.violations.push_back(
        "schema_version mismatch: run " + json::number(run_schema) +
        " vs baseline " + json::number(baseline_schema));
  }
  const json::Object* run_cases = object_field(run, "cases");
  const json::Object* baseline_cases = object_field(baseline, "cases");
  if (run_cases == nullptr || baseline_cases == nullptr) {
    result.violations.push_back(std::string("missing cases object in ") +
                                (run_cases == nullptr ? "run" : "baseline"));
    return result;
  }

  for (const auto& [case_name, baseline_case] : *baseline_cases) {
    const auto run_it = run_cases->find(case_name);
    if (run_it == run_cases->end()) {
      result.violations.push_back("case '" + case_name +
                                  "' missing from run");
      continue;
    }
    const json::Value& run_case = run_it->second;

    // Counters: exact, both directions. A counter that moved, appeared,
    // or vanished is drift; intentional changes regenerate the baseline.
    const json::Object* baseline_counters =
        object_field(baseline_case, "counters");
    const json::Object* run_counters = object_field(run_case, "counters");
    if (baseline_counters != nullptr && run_counters != nullptr) {
      for (const auto& [counter, baseline_value] : *baseline_counters) {
        const auto value_it = run_counters->find(counter);
        if (value_it == run_counters->end()) {
          result.violations.push_back("case '" + case_name + "': counter '" +
                                      counter + "' missing from run");
          continue;
        }
        ++result.counters_compared;
        const double expected = baseline_value.is_number()
                                    ? baseline_value.as_number()
                                    : 0.0;
        const double actual =
            value_it->second.is_number() ? value_it->second.as_number() : 0.0;
        if (actual != expected) {
          result.violations.push_back(
              "case '" + case_name + "': counter '" + counter + "' drifted: " +
              json::number(actual) + " vs baseline " +
              json::number(expected));
        }
      }
      for (const auto& [counter, value] : *run_counters) {
        if (baseline_counters->find(counter) == baseline_counters->end()) {
          result.violations.push_back("case '" + case_name + "': counter '" +
                                      counter + "' not in baseline");
        }
      }
    } else {
      result.violations.push_back(
          "case '" + case_name + "': missing counters object in " +
          (run_counters == nullptr ? "run" : "baseline"));
    }

    const json::Value* baseline_timing = baseline_case.find("timing");
    const json::Value* run_timing = run_case.find("timing");
    if (baseline_timing != nullptr && run_timing != nullptr) {
      const double baseline_median =
          number_field(*baseline_timing, "median_ms", 0.0);
      const double run_median = number_field(*run_timing, "median_ms", 0.0);
      if (baseline_median > 0.0 && run_median > 0.0) {
        char note[160];
        std::snprintf(note, sizeof(note),
                      "case '%s': median %.3f ms vs baseline %.3f ms (%.2fx)",
                      case_name.c_str(), run_median, baseline_median,
                      run_median / baseline_median);
        result.notes.push_back(note);
        if (options.check_time_regression &&
            run_median > baseline_median * (1.0 + options.time_tolerance)) {
          std::snprintf(note, sizeof(note),
                        "case '%s': wall-time regression: median %.3f ms "
                        "exceeds baseline %.3f ms by more than %.0f%%",
                        case_name.c_str(), run_median, baseline_median,
                        options.time_tolerance * 100.0);
          result.violations.push_back(note);
        }
      }
    }
  }
  for (const auto& [case_name, run_case] : *run_cases) {
    if (baseline_cases->find(case_name) == baseline_cases->end()) {
      result.violations.push_back("case '" + case_name +
                                  "' not in baseline");
    }
  }
  // A gate that compared nothing gates nothing: an empty baseline (or one
  // whose cases carry no counters) must fail loudly instead of passing
  // vacuously — the classic way a truncated/mis-regenerated baseline file
  // silently disables the whole perf gate.
  if (baseline_cases->empty()) {
    result.violations.push_back("baseline has no cases — nothing gated");
  } else if (result.counters_compared == 0) {
    result.violations.push_back(
        "baseline cases carry no counters — nothing gated");
  }
  return result;
}

std::string bench_report(const json::Value& suite) {
  std::string out = "bench suite: " + string_field(suite, "name") +
                    " (schema " +
                    json::number(number_field(suite, "schema_version", 0.0)) +
                    ")\n";
  const json::Object* cases = object_field(suite, "cases");
  if (cases == nullptr) {
    out += "  (no cases)\n";
    return out;
  }
  for (const auto& [case_name, bench_case] : *cases) {
    out += "  " + case_name + "\n";
    if (const json::Object* counters = object_field(bench_case, "counters")) {
      out += "    counters:";
      for (const auto& [counter, value] : *counters) {
        out += " " + counter + "=" +
               (value.is_number() ? json::number(value.as_number())
                                  : value.to_json());
      }
      out += "\n";
    }
    if (const json::Value* timing = bench_case.find("timing")) {
      out += "    timing: median " +
             format_ms(number_field(*timing, "median_ms", 0.0)) +
             " ms (mad " + format_ms(number_field(*timing, "mad_ms", 0.0)) +
             ", min " + format_ms(number_field(*timing, "min_ms", 0.0)) +
             ", reps " + json::number(number_field(*timing, "reps", 0.0)) +
             ", warmup " + json::number(number_field(*timing, "warmup", 0.0)) +
             ")\n";
    }
  }
  return out;
}

bool read_file(const std::string& path, std::string& out) {
  out.clear();
  std::FILE* file = path == "-" ? stdin : std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  char buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out.append(buffer, n);
  }
  const bool ok = std::ferror(file) == 0;
  if (file != stdin) std::fclose(file);
  return ok;
}

}  // namespace plos::obs
