// Round journal: append-only per-round time series of a training run.
//
// Both trainers emit one RoundRecord per optimization step — the
// centralized trainer per CCCP round, the distributed trainer per ADMM
// iteration — carrying the convergence state (objective, ADMM residuals),
// work counters (cutting planes in force, QP solves/iterations), and the
// communication picture (participation rate, bytes and fault counters from
// the simulated network). Records are appended on the aggregation thread
// in loop order, and every field derives from the deterministic solver
// state or the integer-exact network ledgers — never from measured wall
// time — so for a fixed seed the serialized journal is byte-identical at
// any thread count (the DESIGN.md §8 contract extended to telemetry).
//
// Serialization is JSON Lines: one self-describing object per record, so
// a journal can be tailed, truncated, or streamed and stays parseable.
// Unset fields (e.g. ADMM residuals in a centralized run) serialize as
// null; numerically non-finite values also serialize as null but keep a
// "finite":false marker so NaN blowups survive the round-trip visibly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace plos::obs {

struct RoundRecord {
  static constexpr double kUnset = std::numeric_limits<double>::quiet_NaN();

  std::string trainer;      ///< "centralized" | "distributed"
  int cccp_round = 0;       ///< outer CCCP round index, 0-based
  int admm_iteration = -1;  ///< within-round ADMM index; -1 for centralized

  double objective = kUnset;
  double primal_residual = kUnset;  ///< distributed only
  double dual_residual = kUnset;    ///< distributed only

  std::size_t constraints = 0;  ///< cutting planes in force after the step
  int qp_solves = 0;            ///< dual QP solves performed by the step
  int qp_iterations = 0;        ///< summed QP inner iterations of the step

  double participation_rate = kUnset;  ///< distributed only
  std::uint64_t bytes_to_devices = 0;  ///< downlink bytes this step
  std::uint64_t bytes_to_server = 0;   ///< uplink bytes this step
  std::uint64_t messages_dropped = 0;  ///< fault-injected losses this step
  std::uint64_t retries = 0;           ///< retransmissions this step

  // Aggregation freshness (distributed trainers; zeros for centralized).
  // The synchronous engine reports quorum_size == participants and never
  // evicts; the async quorum engine (src/async) fills all of them.
  std::uint64_t quorum_size = 0;   ///< fresh uploads aggregated this step
  std::uint64_t late_uploads = 0;  ///< cached late uploads folded this step
  std::uint64_t evictions_offline = 0;  ///< stale blocks reset: device offline
  std::uint64_t evictions_late = 0;     ///< stale blocks reset: straggling/busy
  std::uint64_t evictions_failed = 0;   ///< stale blocks reset: link failures
  std::uint64_t max_staleness = 0;      ///< oldest server block age (rounds)
  /// Per-block age histogram at aggregation time (last bucket open-ended);
  /// empty for trainers without server-side caching (centralized).
  std::vector<std::uint64_t> staleness_hist;

  // Fleet distribution summaries (obs::QuantileSketch, DESIGN.md §15):
  // O(buckets) aggregates replacing any O(users) journal rows, filled on
  // the aggregation thread so they are byte-identical at any thread count.
  /// Staleness quantiles over all server blocks at aggregation time, from
  /// the same ledger pass that fills staleness_hist (unset when the
  /// trainer has no server-side caching).
  double stale_p50 = kUnset;
  double stale_p90 = kUnset;
  double stale_p99 = kUnset;
  /// On-air messages charged this step (the latency sample count).
  std::uint64_t lat_count = 0;
  /// Per-message link-latency quantiles this step, from SimNetwork's
  /// cumulative sketch delta (unset when no network or no messages).
  double lat_p50 = kUnset;
  double lat_p90 = kUnset;
  double lat_p99 = kUnset;
  /// Device-outcome tally for the step, indexed by core::DeviceRoundStatus
  /// (participated, unavailable, offline, ...). One count per device —
  /// the fleet participation distribution. Empty for centralized runs.
  std::vector<std::uint64_t> cause_counts;

  // Auto-tune decision trail (async engine with --auto-tune; defaults
  // elsewhere, which keeps degenerate-mode journals byte-identical).
  /// Quorum fraction in force for the step (unset without auto-tune).
  double tuned_quorum = kUnset;
  /// Staleness bound in force for the step (0 without auto-tune).
  std::uint64_t tuned_staleness_bound = 0;
  /// Controller action this step: "" (none), "hold", "quorum_down",
  /// "quorum_up", "bound_widen", "bound_tighten".
  std::string tune_event;
  /// The percentile value that triggered the action (unset when none).
  double tune_trigger = kUnset;

  /// True when the optional double fields were actually produced but came
  /// out non-finite (they serialize as null either way; this flag keeps
  /// the distinction).  Maintained by record_to_json/parse.
  bool objective_finite = true;
};

/// Serializes one record as a compact single-line JSON object (no trailing
/// newline).
std::string record_to_json(const RoundRecord& record);

/// Thread-safe append-only record collector with JSONL export.
class Journal {
 public:
  /// Round-downsampling for long runs (`plos_run --journal-every N`):
  /// keep every n-th offered record, starting with the first. Only whole
  /// aggregation-boundary records are dropped — kept records are byte-
  /// identical to an undownsampled run's. Default 1 keeps everything.
  void set_every(std::uint64_t n);
  std::uint64_t every() const;

  /// Records offered to append(), including downsampled-away ones.
  std::uint64_t offered() const;

  void append(const RoundRecord& record);

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  /// Copy of all records in append order.
  std::vector<RoundRecord> records() const;

  /// All records as JSON Lines (each line newline-terminated).
  std::string to_jsonl() const;

  /// Writes to_jsonl() to `path` ("-" = stdout). False on I/O failure.
  bool write_jsonl(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t every_ = 1;
  std::uint64_t offered_ = 0;
  std::vector<RoundRecord> records_;
};

/// Parses a JSONL journal back into records. Blank lines are skipped.
/// Returns false (and sets `error` when non-null) on the first malformed
/// line; `out` then holds the records parsed so far.
bool parse_journal_jsonl(std::string_view text, std::vector<RoundRecord>& out,
                         std::string* error = nullptr);

}  // namespace plos::obs
