#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"

namespace plos::obs::json {

bool Value::as_bool() const {
  PLOS_CHECK(is_bool(), "json::Value::as_bool: not a bool");
  return bool_;
}

double Value::as_number() const {
  PLOS_CHECK(is_number(), "json::Value::as_number: not a number");
  return number_;
}

const std::string& Value::as_string() const {
  PLOS_CHECK(is_string(), "json::Value::as_string: not a string");
  return string_;
}

const Array& Value::as_array() const {
  PLOS_CHECK(is_array(), "json::Value::as_array: not an array");
  return *array_;
}

const Object& Value::as_object() const {
  PLOS_CHECK(is_object(), "json::Value::as_object: not an object");
  return *object_;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

std::string escape(std::string_view text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string Value::to_json() const {
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kNumber:
      return number(number_);
    case Type::kString:
      return escape(string_);
    case Type::kArray: {
      std::string out = "[";
      bool first = true;
      for (const Value& v : *array_) {
        if (!first) out += ',';
        first = false;
        out += v.to_json();
      }
      out += ']';
      return out;
    }
    case Type::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, v] : *object_) {
        if (!first) out += ',';
        first = false;
        out += escape(key);
        out += ':';
        out += v.to_json();
      }
      out += '}';
      return out;
    }
  }
  return "null";  // unreachable
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Value> run() {
    skip_whitespace();
    auto value = parse_value();
    if (!value) return std::nullopt;
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return value;
  }

 private:
  void fail(const char* message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(message) + " at byte " + std::to_string(pos_);
    }
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::optional<Value> parse_value() {
    if (at_end()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return Value(std::move(*s));
      }
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
        return std::nullopt;
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
        return std::nullopt;
      case 'n':
        if (consume_literal("null")) return Value();
        fail("invalid literal");
        return std::nullopt;
      default:
        return parse_number();
    }
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && (peek() == '-' || peek() == '+')) ++pos_;
    while (!at_end() &&
           ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
            peek() == 'e' || peek() == 'E' || peek() == '-' || peek() == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
      return std::nullopt;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
      return std::nullopt;
    }
    return Value(value);
  }

  std::optional<std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
              return std::nullopt;
            }
          }
          // The emitters only escape control characters; decode the BMP
          // code point as UTF-8 so round-trips are lossless.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> parse_array() {
    ++pos_;  // '['
    Array items;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    while (true) {
      skip_whitespace();
      auto item = parse_value();
      if (!item) return std::nullopt;
      items.push_back(std::move(*item));
      skip_whitespace();
      if (at_end()) {
        fail("unterminated array");
        return std::nullopt;
      }
      const char c = text_[pos_++];
      if (c == ']') return Value(std::move(items));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<Value> parse_object() {
    ++pos_;  // '{'
    Object members;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') {
        fail("expected object key");
        return std::nullopt;
      }
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_whitespace();
      if (at_end() || text_[pos_++] != ':') {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      skip_whitespace();
      auto value = parse_value();
      if (!value) return std::nullopt;
      members.insert_or_assign(std::move(*key), std::move(*value));
      skip_whitespace();
      if (at_end()) {
        fail("unterminated object");
        return std::nullopt;
      }
      const char c = text_[pos_++];
      if (c == '}') return Value(std::move(members));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

void flatten_into(const Value& value, const std::string& path,
                  std::vector<std::pair<std::string, Value>>& out) {
  switch (value.type()) {
    case Value::Type::kObject:
      for (const auto& [key, member] : value.as_object()) {
        flatten_into(member, path.empty() ? key : path + "." + key, out);
      }
      break;
    case Value::Type::kArray: {
      const Array& items = value.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        flatten_into(items[i], path + "[" + std::to_string(i) + "]", out);
      }
      break;
    }
    default:
      out.emplace_back(path, value);
      break;
  }
}

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).run();
}

std::vector<std::pair<std::string, Value>> flatten(const Value& root) {
  std::vector<std::pair<std::string, Value>> out;
  flatten_into(root, "", out);
  return out;
}

}  // namespace plos::obs::json
