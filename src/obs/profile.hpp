// Hierarchical phase profiler: aggregates PLOS_SPAN scopes into one
// deterministic profile tree per run.
//
// Where the TraceCollector records every span occurrence as an event
// stream (for chrome://tracing), the Profiler folds occurrences of the
// same phase at the same tree position into one node carrying a call
// count and accumulated inclusive wall time. The result is a compact
// per-run cost breakdown: which phases ran, how often, nested where, and
// how much wall time each consumed.
//
// Determinism contract (DESIGN.md §8, §12). The profile JSON splits into
// a structural part and a "timing" quarantine, exactly like the run
// manifest:
//
//   * structure — the phase tree (names, nesting, call counts) and any
//     exact counters taken from a metrics Registry. Byte-identical for a
//     given workload at any thread count, because span nesting is
//     propagated across ThreadPool workers (ProfileContextScope) and the
//     chunk→index map of parallel_for is thread-count-invariant.
//   * "timing" — inclusive/exclusive wall milliseconds per node, peak
//     RSS, and every registry counter whose name ends in "seconds" or
//     "joules" (wall-clock-derived by convention). Never compared by
//     `plos_inspect diff`/`check`, which ignore the timing. prefix.
//
// Thread safety: spans may open/close on any thread; the tree is mutex-
// guarded. Pool workers inherit the spawning thread's current tree
// position via ProfileContextScope so a phase keeps its parent no matter
// which thread executes it. A generation counter guards reset(): spans
// still open across a reset close as no-ops instead of corrupting the
// fresh tree.
//
// Off by default: a PLOS_SPAN with a cold profiler costs one relaxed
// atomic load and a branch, mirroring TraceCollector.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace plos::obs {

class Registry;

/// A position in the profile tree plus the generation it belongs to.
/// Captured on one thread (profile_context()) and installed on another
/// (ProfileContextScope) so spans opened by pool workers nest under the
/// span that spawned the work.
struct ProfileContext {
  std::int32_t node = 0;  ///< index of the current tree node (0 = root)
  std::uint64_t generation = 0;
};

/// Process-global profile tree (leaky singleton).
class Profiler {
 public:
  /// One aggregated phase in the snapshot; children sorted by name.
  struct NodeSnapshot {
    std::string name;
    std::size_t count = 0;
    double inclusive_ms = 0.0;
    std::vector<NodeSnapshot> children;
  };

  static Profiler& instance();

  static bool enabled() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }

  void set_enabled(bool enabled);

  /// Clears the tree and bumps the generation; spans currently open
  /// close as no-ops instead of accumulating into the new tree.
  void reset();

  /// Deep copy of the aggregated tree; the root is a synthetic node
  /// named "root" with count equal to the number of top-level spans.
  NodeSnapshot snapshot() const;

  // Internal API used by ScopedSpan and the thread pool ------------------

  /// Enters a phase: finds/creates the child `name` of the calling
  /// thread's current node, increments its call count, and pushes it on
  /// the thread-local frame stack.
  void span_open(const char* name);

  /// Leaves the innermost phase opened on this thread, accumulating its
  /// inclusive wall time (skipped when reset() intervened).
  void span_close();

  /// The calling thread's current tree position.
  ProfileContext context() const;

 private:
  struct Node {
    std::string name;
    std::int32_t parent = -1;
    std::map<std::string, std::int32_t> children;
    std::size_t count = 0;
    std::int64_t inclusive_ns = 0;
  };

  Profiler();

  void build_snapshot(std::int32_t index, NodeSnapshot& out) const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{0};
  mutable std::mutex mutex_;
  std::vector<Node> nodes_;
};

/// Shorthands used by ScopedSpan (kept free so trace.cpp stays terse).
void profile_span_open(const char* name);
void profile_span_close();

/// Captures the calling thread's current profile position. Cheap; valid
/// until the next Profiler::reset().
ProfileContext profile_context();

/// Installs a captured context as the calling thread's base position for
/// the scope's lifetime; restores the previous base on destruction. The
/// thread pool wraps every queued task in one of these.
class ProfileContextScope {
 public:
  explicit ProfileContextScope(const ProfileContext& context);
  ~ProfileContextScope();

  ProfileContextScope(const ProfileContextScope&) = delete;
  ProfileContextScope& operator=(const ProfileContextScope&) = delete;

 private:
  ProfileContext saved_;
};

struct ProfileJsonOptions {
  /// When false the "timing" section (wall times, peak RSS, *seconds /
  /// *joules counters) is omitted entirely, leaving only the structural
  /// part that must be byte-identical across thread counts.
  bool include_timing = true;
  /// Optional metrics registry whose counters/histograms are embedded as
  /// the exact-counter section of the profile.
  const Registry* registry = nullptr;
};

/// Renders the current profile tree (plus optional registry counters) as
/// one compact JSON object:
///   {"schema_version":1,
///    "counters":{name:value,…},                  // exact, deterministic
///    "histograms":{name:{"count","sum","min","max"},…},
///    "tree":{"name","count","children":[…]},     // structural
///    "timing":{"peak_rss_kb":…,
///              "seconds":{name:value,…},         // *seconds/*joules
///              "tree":{"name","inclusive_ms","exclusive_ms",
///                      "children":[…]}}}
/// Counter/histogram names ending in "seconds" or "joules" are
/// quarantined under timing.seconds / timing.histograms.
std::string profile_to_json(const ProfileJsonOptions& options = {});

/// Writes profile_to_json() to `path` ("-" = stdout); false on I/O error.
bool write_profile(const std::string& path,
                   const ProfileJsonOptions& options = {});

/// Peak resident set size of the process in kilobytes (getrusage), or 0
/// when unavailable. Lives in the timing quarantine: allocator and OS
/// behavior make it machine-dependent.
long peak_rss_kb();

}  // namespace plos::obs
