#include "obs/flight.hpp"

#include <cmath>
#include <cstdio>
#include <map>

#include "common/assert.hpp"
#include "obs/json.hpp"

namespace plos::obs {

namespace {

// One Chrome trace "X" slice. ts/dur are microseconds on the virtual
// clock; the exact seconds ride in args for the lossless round trip.
void append_slice(std::string& out, const FlightEvent& event) {
  out += "{\"name\":\"";
  out += flight_kind_name(event.kind);
  out += "\",\"cat\":\"flight\",\"ph\":\"X\",\"pid\":1,\"tid\":";
  out += std::to_string(
      event.device == kFlightServerDevice
          ? 0u
          : event.device + 1u);
  out += ",\"ts\":";
  out += json::number(event.t_start * 1e6);
  out += ",\"dur\":";
  out += json::number((event.t_end - event.t_start) * 1e6);
  out += ",\"args\":{\"id\":";
  out += std::to_string(event.id());
  out += ",\"round\":";
  out += std::to_string(event.round);
  out += ",\"device\":";
  out += std::to_string(event.device);
  out += ",\"attempt\":";
  out += std::to_string(event.attempt);
  out += ",\"kind\":";
  out += std::to_string(static_cast<int>(event.kind));
  out += ",\"cause\":";
  out += std::to_string(event.cause);
  out += ",\"staleness\":";
  out += std::to_string(event.staleness);
  out += ",\"t_start\":";
  out += json::number(event.t_start);
  out += ",\"t_end\":";
  out += json::number(event.t_end);
  out += "}}";
}

// One flow-event phase ("s" start, "t" step, "f" finish) at a point on a
// track. Perfetto binds each phase to the slice enclosing its timestamp.
void append_flow(std::string& out, const char* phase, std::uint64_t id,
                 std::uint32_t tid, double t_seconds) {
  out += "{\"name\":\"upload_flow\",\"cat\":\"flight\",\"ph\":\"";
  out += phase;
  out += "\",\"id\":";
  out += std::to_string(id);
  out += ",\"pid\":1,\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  out += json::number(t_seconds * 1e6);
  if (phase[0] == 'f') out += ",\"bp\":\"e\"";
  out += "}";
}

}  // namespace

std::string_view flight_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kBootstrap:
      return "bootstrap";
    case FlightEventKind::kUploadAttempt:
      return "upload_attempt";
    case FlightEventKind::kDeadlineMiss:
      return "deadline_miss";
    case FlightEventKind::kQuorumCut:
      return "quorum_cut";
    case FlightEventKind::kLateFold:
      return "late_fold";
    case FlightEventKind::kEviction:
      return "eviction";
    case FlightEventKind::kAggregate:
      return "aggregate";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  PLOS_CHECK(capacity > 0, "FlightRecorder: capacity must be positive");
  ring_.reserve(capacity);
}

void FlightRecorder::record(const FlightEvent& event) {
  PLOS_CHECK(std::isfinite(event.t_start) && std::isfinite(event.t_end) &&
                 event.t_end >= event.t_start,
             "FlightRecorder: event interval must be finite and ordered");
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  // Full: overwrite the oldest (head_ chases the logical start).
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::size_t FlightRecorder::size() const { return ring_.size(); }

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::to_chrome_json() const {
  const std::vector<FlightEvent> ordered = events();

  // Server-side anchors per round, for the upload -> cut -> aggregate
  // flows. std::map keeps the pass deterministic (and the lint rule on
  // this directory bans unordered containers outright).
  struct RoundAnchors {
    double cut = -1.0;
    double aggregate = -1.0;
  };
  std::map<std::uint64_t, RoundAnchors> anchors;
  for (const FlightEvent& event : ordered) {
    if (event.kind == FlightEventKind::kQuorumCut) {
      anchors[event.round].cut = event.t_end;
    } else if (event.kind == FlightEventKind::kAggregate) {
      anchors[event.round].aggregate = event.t_end;
    }
  }

  std::string out = "{\"traceEvents\":[";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"plos flight\"}}";
  out +=
      ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"server\"}}";
  for (const FlightEvent& event : ordered) {
    out += ',';
    append_slice(out, event);
    // A delivered upload that the server actually used opens a flow; it
    // steps through the round's quorum cut and finishes at the aggregate.
    if (event.kind == FlightEventKind::kUploadAttempt &&
        event.cause == static_cast<int>(AttemptResult::kDelivered)) {
      const auto anchor = anchors.find(event.round);
      if (anchor != anchors.end() && anchor->second.cut >= 0.0 &&
          anchor->second.aggregate >= 0.0) {
        out += ',';
        append_flow(out, "s", event.id(), event.device + 1, event.t_end);
        out += ',';
        append_flow(out, "t", event.id(), 0, anchor->second.cut);
        out += ',';
        append_flow(out, "f", event.id(), 0, anchor->second.aggregate);
      }
    }
  }
  out += "]}";
  return out;
}

bool FlightRecorder::write(const std::string& path) const {
  const std::string text = to_chrome_json();
  if (path == "-") {
    return std::fwrite(text.data(), 1, text.size(), stdout) == text.size();
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size();
  return std::fclose(file) == 0 && ok;
}

bool parse_flight_json(std::string_view text, std::vector<FlightEvent>& out,
                       std::string* error) {
  std::string parse_error;
  const auto value = json::parse(text, &parse_error);
  if (!value || !value->is_object()) {
    if (error != nullptr) {
      *error = parse_error.empty() ? "flight log: not a JSON object"
                                   : parse_error;
    }
    return false;
  }
  const json::Value* events = value->find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    if (error != nullptr) *error = "flight log: missing traceEvents array";
    return false;
  }
  for (const json::Value& entry : events->as_array()) {
    if (!entry.is_object()) {
      if (error != nullptr) *error = "flight log: non-object trace event";
      return false;
    }
    const json::Value* phase = entry.find("ph");
    if (phase == nullptr || !phase->is_string() ||
        phase->as_string() != "X") {
      continue;  // flow / metadata entries carry no event payload
    }
    const json::Value* args = entry.find("args");
    if (args == nullptr || !args->is_object()) {
      if (error != nullptr) *error = "flight log: slice without args";
      return false;
    }
    const auto number = [&](std::string_view key, double fallback) {
      const json::Value* field = args->find(key);
      return field != nullptr && field->is_number() ? field->as_number()
                                                    : fallback;
    };
    FlightEvent event;
    event.round = static_cast<std::uint64_t>(number("round", 0.0));
    event.device = static_cast<std::uint32_t>(number("device", 0.0));
    event.attempt = static_cast<std::uint32_t>(number("attempt", 0.0));
    event.kind = static_cast<FlightEventKind>(
        static_cast<int>(number("kind", 0.0)));
    event.cause = static_cast<int>(number("cause", 0.0));
    event.staleness = static_cast<std::uint64_t>(number("staleness", 0.0));
    event.t_start = number("t_start", 0.0);
    event.t_end = number("t_end", event.t_start);
    out.push_back(event);
  }
  return true;
}

}  // namespace plos::obs
