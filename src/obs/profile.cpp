#include "obs/profile.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sys/resource.h>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace plos::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Frame {
  std::int32_t node = 0;
  std::uint64_t generation = 0;
  std::int64_t start_ns = 0;
};

// Per-thread frame stack plus the base position installed by
// ProfileContextScope (what a pool worker inherits from its spawner).
struct ThreadState {
  std::vector<Frame> stack;
  ProfileContext base;
};

ThreadState& tls() {
  thread_local ThreadState state;
  return state;
}

/// Wall-clock-derived instruments are quarantined by naming convention:
/// anything accumulating seconds (or energy integrated over seconds)
/// varies run to run and must live under "timing".
bool is_timing_instrument(const std::string& name) {
  return name.ends_with("seconds") || name.ends_with("joules");
}

}  // namespace

Profiler::Profiler() {
  Node root;
  root.name = "root";
  nodes_.push_back(std::move(root));
}

Profiler& Profiler::instance() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

void Profiler::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  nodes_.clear();
  Node root;
  root.name = "root";
  nodes_.push_back(std::move(root));
  generation_.fetch_add(1, std::memory_order_release);
}

void Profiler::span_open(const char* name) {
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  ThreadState& state = tls();
  std::int32_t parent = 0;
  if (!state.stack.empty()) {
    if (state.stack.back().generation == generation) {
      parent = state.stack.back().node;
    }
  } else if (state.base.generation == generation) {
    parent = state.base.node;
  }
  std::int32_t child = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (parent < 0 || static_cast<std::size_t>(parent) >= nodes_.size()) {
      parent = 0;  // stale context from before a reset: re-root
    }
    const auto it = nodes_[parent].children.find(name);
    if (it != nodes_[parent].children.end()) {
      child = it->second;
    } else {
      child = static_cast<std::int32_t>(nodes_.size());
      nodes_[parent].children.emplace(name, child);
      Node node;
      node.name = name;
      node.parent = parent;
      nodes_.push_back(std::move(node));
    }
    ++nodes_[child].count;
  }
  state.stack.push_back(Frame{child, generation, steady_now_ns()});
}

void Profiler::span_close() {
  ThreadState& state = tls();
  if (state.stack.empty()) return;  // unbalanced close: ignore
  const Frame frame = state.stack.back();
  state.stack.pop_back();
  if (frame.generation != generation_.load(std::memory_order_acquire)) {
    return;  // span opened before a reset; its node is gone
  }
  const std::int64_t elapsed = steady_now_ns() - frame.start_ns;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (frame.node >= 0 && static_cast<std::size_t>(frame.node) < nodes_.size()) {
    nodes_[frame.node].inclusive_ns += elapsed;
  }
}

ProfileContext Profiler::context() const {
  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  const ThreadState& state = tls();
  if (!state.stack.empty() &&
      state.stack.back().generation == generation) {
    return ProfileContext{state.stack.back().node, generation};
  }
  if (state.stack.empty() && state.base.generation == generation) {
    return state.base;
  }
  return ProfileContext{0, generation};
}

void Profiler::build_snapshot(std::int32_t index, NodeSnapshot& out) const {
  const Node& node = nodes_[index];
  out.name = node.name;
  out.count = node.count;
  out.inclusive_ms = static_cast<double>(node.inclusive_ns) * 1e-6;
  out.children.reserve(node.children.size());
  for (const auto& [name, child] : node.children) {
    out.children.emplace_back();
    build_snapshot(child, out.children.back());
  }
}

Profiler::NodeSnapshot Profiler::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  NodeSnapshot root;
  build_snapshot(0, root);
  root.count = 0;
  for (const NodeSnapshot& child : root.children) root.count += child.count;
  return root;
}

void profile_span_open(const char* name) {
  Profiler::instance().span_open(name);
}

void profile_span_close() { Profiler::instance().span_close(); }

ProfileContext profile_context() { return Profiler::instance().context(); }

ProfileContextScope::ProfileContextScope(const ProfileContext& context)
    : saved_(tls().base) {
  tls().base = context;
}

ProfileContextScope::~ProfileContextScope() { tls().base = saved_; }

namespace {

void append_structural_tree(const Profiler::NodeSnapshot& node,
                            std::string& out) {
  out += "{\"name\":";
  out += json::escape(node.name);  // escape() adds the quotes
  out += ",\"count\":";
  out += json::number(static_cast<double>(node.count));
  out += ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ',';
    append_structural_tree(node.children[i], out);
  }
  out += "]}";
}

void append_timing_tree(const Profiler::NodeSnapshot& node,
                        std::string& out) {
  double children_ms = 0.0;
  for (const Profiler::NodeSnapshot& child : node.children) {
    children_ms += child.inclusive_ms;
  }
  // With parallel children the sum of child inclusive times can exceed
  // the parent's wall time; clamp so "exclusive" never goes negative.
  const double exclusive_ms =
      std::max(0.0, node.inclusive_ms - children_ms);
  out += "{\"name\":";
  out += json::escape(node.name);
  out += ",\"inclusive_ms\":";
  out += json::number(node.inclusive_ms);
  out += ",\"exclusive_ms\":";
  out += json::number(exclusive_ms);
  out += ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ',';
    append_timing_tree(node.children[i], out);
  }
  out += "]}";
}

void append_number_map(const std::map<std::string, double>& values,
                       std::string& out) {
  out += '{';
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) out += ',';
    first = false;
    out += json::escape(name);
    out += ':';
    out += json::number(value);
  }
  out += '}';
}

struct HistogramSummary {
  double count = 0.0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

void append_histogram_map(
    const std::map<std::string, HistogramSummary>& values, std::string& out) {
  out += '{';
  bool first = true;
  for (const auto& [name, h] : values) {
    if (!first) out += ',';
    first = false;
    out += json::escape(name);
    out += ":{\"count\":";
    out += json::number(h.count);
    out += ",\"sum\":";
    out += json::number(h.sum);
    out += ",\"min\":";
    out += json::number(h.min);
    out += ",\"max\":";
    out += json::number(h.max);
    out += '}';
  }
  out += '}';
}

double field_or_zero(const json::Value& object, std::string_view key) {
  const json::Value* field = object.find(key);
  return field != nullptr && field->is_number() ? field->as_number() : 0.0;
}

}  // namespace

std::string profile_to_json(const ProfileJsonOptions& options) {
  // Exact counters come from the registry snapshot; reusing its JSON
  // emitter (and parsing it back) keeps one source of truth for how
  // instruments serialize.
  std::map<std::string, double> counters;
  std::map<std::string, double> timing_counters;
  std::map<std::string, HistogramSummary> histograms;
  std::map<std::string, HistogramSummary> timing_histograms;
  if (options.registry != nullptr) {
    if (const auto parsed = json::parse(options.registry->to_json())) {
      if (const json::Value* object = parsed->find("counters")) {
        for (const auto& [name, value] : object->as_object()) {
          if (!value.is_number()) continue;
          (is_timing_instrument(name) ? timing_counters
                                      : counters)[name] = value.as_number();
        }
      }
      if (const json::Value* object = parsed->find("histograms")) {
        for (const auto& [name, value] : object->as_object()) {
          if (!value.is_object()) continue;
          HistogramSummary summary;
          summary.count = field_or_zero(value, "count");
          summary.sum = field_or_zero(value, "sum");
          summary.min = field_or_zero(value, "min");
          summary.max = field_or_zero(value, "max");
          (is_timing_instrument(name) ? timing_histograms
                                      : histograms)[name] = summary;
        }
      }
    }
  }

  const Profiler::NodeSnapshot tree = Profiler::instance().snapshot();
  std::string out = "{\"schema_version\":1,\"counters\":";
  append_number_map(counters, out);
  out += ",\"histograms\":";
  append_histogram_map(histograms, out);
  out += ",\"tree\":";
  append_structural_tree(tree, out);
  if (options.include_timing) {
    out += ",\"timing\":{\"peak_rss_kb\":";
    out += json::number(static_cast<double>(peak_rss_kb()));
    out += ",\"seconds\":";
    append_number_map(timing_counters, out);
    out += ",\"histograms\":";
    append_histogram_map(timing_histograms, out);
    out += ",\"tree\":";
    append_timing_tree(tree, out);
    out += '}';
  }
  out += '}';
  return out;
}

bool write_profile(const std::string& path,
                   const ProfileJsonOptions& options) {
  const std::string json = profile_to_json(options);
  if (path == "-") {
    return std::fwrite(json.data(), 1, json.size(), stdout) == json.size() &&
           std::fputc('\n', stdout) != EOF;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), file) == json.size() &&
      std::fputc('\n', file) != EOF;
  return std::fclose(file) == 0 && ok;
}

long peak_rss_kb() {
  struct rusage usage = {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;  // kilobytes on Linux
}

}  // namespace plos::obs
