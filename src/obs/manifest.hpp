// Run manifest: one durable JSON record per training invocation.
//
// A run without a manifest is a black box once the process exits — there
// is no way to tie a result file to the seed, solver options, dataset,
// fault configuration, and convergence outcome that produced it, and no
// way to compare two runs mechanically. The manifest captures all of that
// in a single `run.json`, written by `plos_run --manifest-out` and by the
// benches via `bench_support` (PLOS_BENCH_MANIFEST).
//
// Determinism contract: every field outside the "timing" section derives
// from the run's configuration or its deterministic results (bitwise
// thread-count-independent per DESIGN.md §8), so for a fixed seed the
// manifest minus timing is byte-identical across thread counts. Real wall
// time, the simulated clock (which scales *measured* compute), and the
// thread count itself only affect speed, never results — they live in the
// "timing" section, which `manifest_to_json(..., include_timing=false)`
// omits and `plos_inspect diff/check` ignores by default.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace plos::obs {

/// Identity of the dataset a run trained on. `content_hash` is FNV-1a over
/// the raw sample bits, labels, and revealed flags (see
/// data::fingerprint); two runs with equal fingerprints trained on
/// identical data.
struct DatasetFingerprint {
  std::string name;              ///< generator name ("synth", "body", ...)
  std::size_t users = 0;
  std::size_t providers = 0;     ///< users with at least one revealed label
  std::size_t samples = 0;
  std::size_t dim = 0;
  double labeled_fraction = 0.0; ///< revealed / total samples
  std::uint64_t content_hash = 0;
};

struct RunManifest {
  // -- provenance ----------------------------------------------------------
  std::string tool;           ///< "plos_run", bench binary name, ...
  int schema_version = 1;
  std::string compiler;       ///< __VERSION__ of the building compiler
  std::string build_type;     ///< "release" / "debug" (from NDEBUG)

  // -- configuration -------------------------------------------------------
  std::uint64_t seed = 0;
  DatasetFingerprint dataset;
  /// Full solver options, rendered to stable strings ("%.17g" doubles).
  std::map<std::string, std::string> options;
  /// Fault-injection configuration; empty for fault-free runs.
  std::map<std::string, std::string> fault;

  // -- outcome -------------------------------------------------------------
  /// Final deterministic metrics: accuracies, rounds, iteration counts,
  /// final objective/residuals, byte totals, fault counters.
  std::map<std::string, double> results;
  std::string watchdog_verdict = "off";  ///< "off" | "ok" | "warn" | "abort"
  std::size_t watchdog_violations = 0;
  std::string watchdog_first_violation;  ///< empty when none fired

  // -- timing (excluded from the deterministic serialization) --------------
  int threads = 1;             ///< resolved worker-thread count
  double wall_seconds = 0.0;   ///< real end-to-end wall time
  /// Additional non-deterministic timings (simulated seconds, per-phase
  /// breakdowns).
  std::map<std::string, double> timing;
};

/// Fills compiler/build_type from the current build.
void fill_build_info(RunManifest& manifest);

/// Serializes the manifest as a single-line JSON object. With
/// include_timing = false the "timing" section (threads, wall time,
/// timing map) is omitted entirely — the deterministic core.
std::string manifest_to_json(const RunManifest& manifest,
                             bool include_timing = true);

/// Writes manifest_to_json + trailing newline to `path` ("-" = stdout).
bool write_manifest(const RunManifest& manifest, const std::string& path,
                    bool include_timing = true);

/// Incremental FNV-1a 64-bit hasher for dataset/content fingerprints.
class Fnv1a {
 public:
  void add_bytes(const void* data, std::size_t size);
  void add_u64(std::uint64_t value);
  void add_double(double value);  ///< hashes the exact bit pattern
  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 1469598103934665603ull;  // FNV offset basis
};

}  // namespace plos::obs
