#include "obs/journal.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"
#include "obs/json.hpp"

namespace plos::obs {

namespace {

// Optional doubles serialize as `null` when unset (NaN sentinel); real
// non-finite results also render null, distinguished by the finite flag.
void append_optional(std::string& out, const char* key, double value) {
  out += '"';
  out += key;
  out += "\":";
  out += json::number(value);
}

void append_u64(std::string& out, const char* key, std::uint64_t value) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

double optional_number(const json::Value& record, std::string_view key) {
  const json::Value* field = record.find(key);
  if (field == nullptr || !field->is_number()) return RoundRecord::kUnset;
  return field->as_number();
}

std::uint64_t u64_field(const json::Value& record, std::string_view key) {
  const json::Value* field = record.find(key);
  if (field == nullptr || !field->is_number()) return 0;
  return static_cast<std::uint64_t>(field->as_number());
}

}  // namespace

std::string record_to_json(const RoundRecord& record) {
  std::string out = "{";
  out += "\"trainer\":";
  out += json::escape(record.trainer);
  out += ",\"cccp_round\":";
  out += std::to_string(record.cccp_round);
  out += ",\"admm_iteration\":";
  out += std::to_string(record.admm_iteration);
  out += ',';
  append_optional(out, "objective", record.objective);
  out += ",\"objective_finite\":";
  out += record.objective_finite ? "true" : "false";
  out += ',';
  append_optional(out, "primal_residual", record.primal_residual);
  out += ',';
  append_optional(out, "dual_residual", record.dual_residual);
  out += ',';
  append_u64(out, "constraints", record.constraints);
  out += ",\"qp_solves\":";
  out += std::to_string(record.qp_solves);
  out += ",\"qp_iterations\":";
  out += std::to_string(record.qp_iterations);
  out += ',';
  append_optional(out, "participation_rate", record.participation_rate);
  out += ',';
  append_u64(out, "bytes_to_devices", record.bytes_to_devices);
  out += ',';
  append_u64(out, "bytes_to_server", record.bytes_to_server);
  out += ',';
  append_u64(out, "messages_dropped", record.messages_dropped);
  out += ',';
  append_u64(out, "retries", record.retries);
  out += ',';
  append_u64(out, "quorum_size", record.quorum_size);
  out += ',';
  append_u64(out, "late_uploads", record.late_uploads);
  out += ',';
  append_u64(out, "evictions_offline", record.evictions_offline);
  out += ',';
  append_u64(out, "evictions_late", record.evictions_late);
  out += ',';
  append_u64(out, "evictions_failed", record.evictions_failed);
  out += ',';
  append_u64(out, "max_staleness", record.max_staleness);
  out += ",\"staleness_hist\":[";
  for (std::size_t i = 0; i < record.staleness_hist.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(record.staleness_hist[i]);
  }
  out += "],";
  append_optional(out, "stale_p50", record.stale_p50);
  out += ',';
  append_optional(out, "stale_p90", record.stale_p90);
  out += ',';
  append_optional(out, "stale_p99", record.stale_p99);
  out += ',';
  append_u64(out, "lat_count", record.lat_count);
  out += ',';
  append_optional(out, "lat_p50", record.lat_p50);
  out += ',';
  append_optional(out, "lat_p90", record.lat_p90);
  out += ',';
  append_optional(out, "lat_p99", record.lat_p99);
  out += ",\"cause_counts\":[";
  for (std::size_t i = 0; i < record.cause_counts.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(record.cause_counts[i]);
  }
  out += "],";
  append_optional(out, "tuned_quorum", record.tuned_quorum);
  out += ',';
  append_u64(out, "tuned_staleness_bound", record.tuned_staleness_bound);
  out += ",\"tune_event\":";
  out += json::escape(record.tune_event);
  out += ',';
  append_optional(out, "tune_trigger", record.tune_trigger);
  out += '}';
  return out;
}

void Journal::set_every(std::uint64_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  PLOS_CHECK(n >= 1, "Journal: --journal-every must be >= 1");
  every_ = n;
}

std::uint64_t Journal::every() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return every_;
}

std::uint64_t Journal::offered() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return offered_;
}

void Journal::append(const RoundRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Downsampling keeps the 1st, (n+1)th, ... offered record: whole
  // aggregation-boundary records are dropped, never partial fields, so a
  // kept line is byte-identical to the same line of an every=1 run.
  const bool keep = (offered_ % every_) == 0;
  ++offered_;
  if (!keep) return;
  // Monotonic-round ordering: within one trainer's stream, records arrive
  // in strictly increasing (cccp_round, admm_iteration) order — the byte-
  // identity contract (§8) depends on append order being loop order, so an
  // out-of-order append means a racing or misbehaving producer.
  if (!records_.empty() && records_.back().trainer == record.trainer) {
    const RoundRecord& last = records_.back();
    PLOS_CHECK(record.cccp_round > last.cccp_round ||
                   (record.cccp_round == last.cccp_round &&
                    record.admm_iteration > last.admm_iteration),
               "Journal: out-of-order round record ("
                   << record.cccp_round << "," << record.admm_iteration
                   << ") after (" << last.cccp_round << ","
                   << last.admm_iteration << ")");
  }
  records_.push_back(record);
}

std::size_t Journal::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::vector<RoundRecord> Journal::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::string Journal::to_jsonl() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const RoundRecord& record : records_) {
    out += record_to_json(record);
    out += '\n';
  }
  return out;
}

bool Journal::write_jsonl(const std::string& path) const {
  const std::string text = to_jsonl();
  if (path == "-") {
    return std::fwrite(text.data(), 1, text.size(), stdout) == text.size();
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size();
  return std::fclose(file) == 0 && ok;
}

bool parse_journal_jsonl(std::string_view text, std::vector<RoundRecord>& out,
                         std::string* error) {
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.empty()) continue;

    std::string parse_error;
    const auto value = json::parse(line, &parse_error);
    if (!value || !value->is_object()) {
      if (error != nullptr) {
        *error = "journal line " + std::to_string(line_number) + ": " +
                 (parse_error.empty() ? "not a JSON object" : parse_error);
      }
      return false;
    }

    RoundRecord record;
    if (const json::Value* trainer = value->find("trainer");
        trainer != nullptr && trainer->is_string()) {
      record.trainer = trainer->as_string();
    }
    record.cccp_round = static_cast<int>(u64_field(*value, "cccp_round"));
    if (const json::Value* admm = value->find("admm_iteration");
        admm != nullptr && admm->is_number()) {
      record.admm_iteration = static_cast<int>(admm->as_number());
    }
    record.objective = optional_number(*value, "objective");
    if (const json::Value* finite = value->find("objective_finite");
        finite != nullptr && finite->is_bool()) {
      record.objective_finite = finite->as_bool();
    }
    record.primal_residual = optional_number(*value, "primal_residual");
    record.dual_residual = optional_number(*value, "dual_residual");
    record.constraints =
        static_cast<std::size_t>(u64_field(*value, "constraints"));
    record.qp_solves = static_cast<int>(u64_field(*value, "qp_solves"));
    record.qp_iterations =
        static_cast<int>(u64_field(*value, "qp_iterations"));
    record.participation_rate = optional_number(*value, "participation_rate");
    record.bytes_to_devices = u64_field(*value, "bytes_to_devices");
    record.bytes_to_server = u64_field(*value, "bytes_to_server");
    record.messages_dropped = u64_field(*value, "messages_dropped");
    record.retries = u64_field(*value, "retries");
    record.quorum_size = u64_field(*value, "quorum_size");
    record.late_uploads = u64_field(*value, "late_uploads");
    record.evictions_offline = u64_field(*value, "evictions_offline");
    record.evictions_late = u64_field(*value, "evictions_late");
    record.evictions_failed = u64_field(*value, "evictions_failed");
    record.max_staleness = u64_field(*value, "max_staleness");
    record.staleness_hist.clear();
    if (const json::Value* hist = value->find("staleness_hist");
        hist != nullptr && hist->is_array()) {
      for (const json::Value& entry : hist->as_array()) {
        if (!entry.is_number()) continue;
        record.staleness_hist.push_back(
            static_cast<std::uint64_t>(entry.as_number()));
      }
    }
    record.stale_p50 = optional_number(*value, "stale_p50");
    record.stale_p90 = optional_number(*value, "stale_p90");
    record.stale_p99 = optional_number(*value, "stale_p99");
    record.lat_count = u64_field(*value, "lat_count");
    record.lat_p50 = optional_number(*value, "lat_p50");
    record.lat_p90 = optional_number(*value, "lat_p90");
    record.lat_p99 = optional_number(*value, "lat_p99");
    record.cause_counts.clear();
    if (const json::Value* causes = value->find("cause_counts");
        causes != nullptr && causes->is_array()) {
      for (const json::Value& entry : causes->as_array()) {
        if (!entry.is_number()) continue;
        record.cause_counts.push_back(
            static_cast<std::uint64_t>(entry.as_number()));
      }
    }
    record.tuned_quorum = optional_number(*value, "tuned_quorum");
    record.tuned_staleness_bound =
        u64_field(*value, "tuned_staleness_bound");
    if (const json::Value* tune = value->find("tune_event");
        tune != nullptr && tune->is_string()) {
      record.tune_event = tune->as_string();
    }
    record.tune_trigger = optional_number(*value, "tune_trigger");
    out.push_back(std::move(record));
  }
  return true;
}

}  // namespace plos::obs
