#include "obs/watchdog.hpp"

#include <cmath>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace plos::obs {

namespace {

Counter& kind_counter(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kNonFinite:
      return metrics().counter("plos.watchdog.nonfinite");
    case ViolationKind::kStall:
      return metrics().counter("plos.watchdog.stall");
    case ViolationKind::kDivergence:
      return metrics().counter("plos.watchdog.divergence");
    case ViolationKind::kParticipation:
      return metrics().counter("plos.watchdog.participation");
    case ViolationKind::kStaleness:
      return metrics().counter("plos.watchdog.staleness");
  }
  return metrics().counter("plos.watchdog.unknown");  // unreachable
}

}  // namespace

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kNonFinite:
      return "nonfinite";
    case ViolationKind::kStall:
      return "stall";
    case ViolationKind::kDivergence:
      return "divergence";
    case ViolationKind::kParticipation:
      return "participation";
    case ViolationKind::kStaleness:
      return "staleness";
  }
  return "unknown";
}

Watchdog::Watchdog(WatchdogConfig config) : config_(config) {}

WatchdogAction Watchdog::report(ViolationKind kind, std::string message) {
  const std::size_t index = records_seen_ - 1;
  kind_counter(kind).increment();
  metrics().counter("plos.watchdog.violations").increment();
  const bool abort_run =
      config_.on_violation == WatchdogConfig::OnViolation::kAbort;
  if (abort_run) {
    abort_ = true;
    PLOS_LOG_ERROR("watchdog violation, aborting run",
                   obs::F("kind", violation_kind_name(kind)),
                   obs::F("record", index), obs::F("detail", message));
  } else {
    PLOS_LOG_WARN("watchdog violation",
                  obs::F("kind", violation_kind_name(kind)),
                  obs::F("record", index), obs::F("detail", message));
  }
  violations_.push_back({kind, index, std::move(message)});
  return abort_run ? WatchdogAction::kAbort : WatchdogAction::kWarn;
}

WatchdogAction Watchdog::observe(const RoundRecord& record) {
  ++records_seen_;
  WatchdogAction action = WatchdogAction::kNone;
  const auto escalate = [&action](WatchdogAction fired) {
    if (static_cast<int>(fired) > static_cast<int>(action)) action = fired;
  };

  // -- non-finite values ---------------------------------------------------
  // objective == NaN means either "field unset" (objective_finite stays
  // true) or a genuine blowup (trainer sets objective_finite = false); the
  // residuals have no such marker, so any produced non-finite residual is
  // treated as a blowup.
  const bool objective_blowup =
      !record.objective_finite || std::isinf(record.objective);
  const bool residual_blowup =
      (!std::isnan(record.primal_residual) &&
       !std::isfinite(record.primal_residual)) ||
      (!std::isnan(record.dual_residual) &&
       !std::isfinite(record.dual_residual));
  if (objective_blowup || residual_blowup) {
    escalate(report(ViolationKind::kNonFinite,
                    objective_blowup ? "objective is not finite"
                                     : "ADMM residual is not finite"));
  }

  const bool has_objective =
      record.objective_finite && std::isfinite(record.objective);

  // -- divergence ----------------------------------------------------------
  if (has_objective && config_.divergence_factor > 0.0 &&
      has_best_objective_ &&
      record.objective >
          config_.divergence_factor * (1.0 + std::abs(best_objective_))) {
    escalate(report(
        ViolationKind::kDivergence,
        "objective " + json::number(record.objective) + " exceeds " +
            json::number(config_.divergence_factor) + "x (1 + |best " +
            json::number(best_objective_) + "|)"));
  }
  if (std::isfinite(record.primal_residual) &&
      config_.residual_divergence_factor > 0.0) {
    if (has_best_residual_ &&
        record.primal_residual >
            config_.residual_divergence_factor *
                (best_primal_residual_ + 1e-300)) {
      escalate(report(ViolationKind::kDivergence,
                      "primal residual " +
                          json::number(record.primal_residual) + " grew " +
                          json::number(config_.residual_divergence_factor) +
                          "x beyond best " +
                          json::number(best_primal_residual_)));
    }
    if (!has_best_residual_ ||
        record.primal_residual < best_primal_residual_) {
      has_best_residual_ = true;
      best_primal_residual_ = record.primal_residual;
    }
  }

  // -- stall ---------------------------------------------------------------
  if (has_objective) {
    const bool improved =
        !has_best_objective_ ||
        record.objective <
            best_objective_ -
                config_.stall_tolerance * (1.0 + std::abs(best_objective_));
    if (improved) {
      has_best_objective_ = true;
      best_objective_ = record.objective;
      records_since_improvement_ = 0;
    } else {
      ++records_since_improvement_;
      if (config_.stall_rounds > 0 &&
          records_since_improvement_ >= config_.stall_rounds) {
        escalate(report(ViolationKind::kStall,
                        "no objective improvement over " +
                            std::to_string(records_since_improvement_) +
                            " records (best " +
                            json::number(best_objective_) + ")"));
        records_since_improvement_ = 0;  // re-arm instead of firing per round
      }
    }
  }

  // -- participation collapse ----------------------------------------------
  if (config_.participation_floor > 0.0 &&
      !std::isnan(record.participation_rate)) {
    if (record.participation_rate < config_.participation_floor) {
      ++low_participation_streak_;
      if (low_participation_streak_ >= config_.participation_rounds) {
        escalate(report(
            ViolationKind::kParticipation,
            "participation " + json::number(record.participation_rate) +
                " below floor " + json::number(config_.participation_floor) +
                " for " + std::to_string(low_participation_streak_) +
                " consecutive records"));
        low_participation_streak_ = 0;  // re-arm
      }
    } else {
      low_participation_streak_ = 0;
    }
  }

  // -- staleness collapse ----------------------------------------------------
  if (config_.staleness_ceiling > 0) {
    // Under --auto-tune the controller may legitimately widen the staleness
    // bound past a statically configured ceiling; the journaled tuned bound
    // overrides the static value so the watchdog tracks the knob that is
    // actually in force instead of false-firing mid-widen.
    const std::uint64_t ceiling = record.tuned_staleness_bound > 0
                                      ? record.tuned_staleness_bound
                                      : config_.staleness_ceiling;
    if (record.max_staleness >= ceiling) {
      ++high_staleness_streak_;
      if (high_staleness_streak_ >= config_.staleness_rounds) {
        escalate(report(
            ViolationKind::kStaleness,
            "max staleness " + std::to_string(record.max_staleness) +
                " at or above ceiling " + std::to_string(ceiling) + " for " +
                std::to_string(high_staleness_streak_) +
                " consecutive records"));
        high_staleness_streak_ = 0;  // re-arm
      }
    } else {
      high_staleness_streak_ = 0;
    }
  }

  if (action != WatchdogAction::kNone) {
    metrics()
        .gauge("plos.watchdog.violations_total")
        .set(static_cast<double>(violations_.size()));
  }
  return action;
}

const char* Watchdog::verdict() const {
  if (abort_) return "abort";
  return violations_.empty() ? "ok" : "warn";
}

Watchdog replay_watchdog(const std::vector<RoundRecord>& records,
                         const WatchdogConfig& config) {
  Watchdog watchdog(config);
  for (const RoundRecord& record : records) {
    watchdog.observe(record);
    if (watchdog.should_abort()) break;
  }
  return watchdog;
}

}  // namespace plos::obs
