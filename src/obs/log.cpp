#include "obs/log.hpp"

#include <cstdio>

#include "common/stopwatch.hpp"

namespace plos::obs {

namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

// Escapes backslashes, quotes, and newlines so one record stays one line.
std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Seconds since process start, shared by every record for a monotone `ts=`.
const Stopwatch& process_clock() {
  static const Stopwatch* watch = new Stopwatch();
  return *watch;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace:
      return "trace";
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
    case Level::kOff:
      return "off";
  }
  return "unknown";
}

std::optional<Level> parse_level(std::string_view name) {
  for (Level level : {Level::kTrace, Level::kDebug, Level::kInfo, Level::kWarn,
                      Level::kError, Level::kOff}) {
    if (name == level_name(level)) return level;
  }
  return std::nullopt;
}

namespace detail {

Field signed_field(std::string_view key, long long value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld", value);
  return {std::string(key), buffer, false};
}

Field unsigned_field(std::string_view key, unsigned long long value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu", value);
  return {std::string(key), buffer, false};
}

}  // namespace detail

Field F(std::string_view key, double value) {
  return {std::string(key), format_double(value), false};
}

Field F(std::string_view key, bool value) {
  return {std::string(key), value ? "true" : "false", false};
}

Field F(std::string_view key, std::string_view value) {
  return {std::string(key), std::string(value), true};
}

Field F(std::string_view key, const char* value) {
  return F(key, std::string_view(value));
}

void StderrSink::write(std::string_view line) {
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

FileSink::FileSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "a")) {}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::write(std::string_view line) {
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

void MemorySink::write(std::string_view line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  lines_.emplace_back(line);
}

std::vector<std::string> MemorySink::lines() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

void MemorySink::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lines_.clear();
}

Logger::Logger() : sink_(std::make_shared<NullSink>()) {}

Logger& Logger::instance() {
  static Logger* logger = new Logger();  // leaky: outlives all callers
  return *logger;
}

void Logger::set_sink(std::shared_ptr<Sink> sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_ = sink != nullptr ? std::move(sink) : std::make_shared<NullSink>();
}

void Logger::write(Level level, std::string_view message,
                   std::initializer_list<Field> fields) {
  std::string line;
  line.reserve(64 + message.size() + 24 * fields.size());
  char header[48];
  std::snprintf(header, sizeof(header), "ts=%.6f level=%s msg=\"",
                process_clock().elapsed_seconds(), level_name(level));
  line += header;
  line += escape(message);
  line += '"';
  for (const Field& field : fields) {
    line += ' ';
    line += field.key;
    line += '=';
    if (field.quoted) {
      line += '"';
      line += escape(field.value);
      line += '"';
    } else {
      line += field.value;
    }
  }
  line += '\n';

  const std::lock_guard<std::mutex> lock(mutex_);
  sink_->write(line);
}

}  // namespace plos::obs
