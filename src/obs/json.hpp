// Minimal JSON document model + recursive-descent parser.
//
// The telemetry pipeline writes JSON (metrics snapshots, run manifests,
// round journals) with hand-rolled emitters; `plos_inspect` needs to read
// those artifacts back to report on, diff, and gate runs. This is the
// matching reader: a small, dependency-free parser that accepts exactly
// the JSON subset the emitters produce (plus standard escapes), returning
// an ordered document tree so flattened field paths enumerate
// deterministically.
//
// Not a general-purpose JSON library: numbers are always doubles, object
// keys are unique (later duplicates overwrite), and input is expected to
// be ASCII/UTF-8 passed through verbatim.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace plos::obs::json {

class Value;

using Array = std::vector<Value>;
/// Ordered map so iteration (and therefore path flattening) is stable.
using Object = std::map<std::string, Value, std::less<>>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double n) : type_(Type::kNumber), number_(n) {}
  explicit Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; calling the wrong one is a programming error checked
  // by PLOS_CHECK inside the .cpp.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// Renders the value back to compact JSON (numbers via %.17g, non-finite
  /// numbers as null — matching the repo's emitters).
  std::string to_json() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses one JSON document. On failure returns nullopt and, when `error`
/// is non-null, stores a one-line diagnostic with the byte offset.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

/// Flattens a document into (path, leaf) pairs: object members join with
/// '.', array elements append "[i]". Leaves are null/bool/number/string
/// values; empty arrays/objects flatten to nothing.
std::vector<std::pair<std::string, Value>> flatten(const Value& root);

/// JSON string escaping shared by the telemetry emitters.
std::string escape(std::string_view text);

/// Canonical number rendering shared by the telemetry emitters ("%.17g";
/// non-finite renders as "null" since JSON has no inf/nan).
std::string number(double value);

}  // namespace plos::obs::json
