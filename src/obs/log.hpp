// Structured logging for the PLOS library.
//
// Design goals, in order:
//   1. Disabled logging is nearly free: every PLOS_LOG_* call below the
//      runtime level costs one relaxed atomic load and one branch; calls
//      below the compile-time floor PLOS_LOG_LEVEL vanish entirely.
//   2. Structured output: a log record is a message plus key=value fields,
//      rendered as one `ts=… level=… msg="…" key=value …` line per record.
//   3. Thread safety: records from concurrent threads never interleave
//      within a line (the sink is written under a mutex).
//
// Usage:
//   PLOS_LOG_INFO("qp solved", obs::F("iters", result.iterations),
//                              obs::F("objective", result.objective));
//
// The compile-time floor is set with -DPLOS_LOG_LEVEL=<0..5> (0 = TRACE
// keeps everything, 5 = OFF strips every call). The default keeps all
// levels compiled in and filters at runtime (default runtime level: INFO,
// default sink: null — the library is silent until a sink is installed).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace plos::obs {

enum class Level : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Lower-case level name ("trace", …, "off").
const char* level_name(Level level);

/// Parses a lower-case level name; nullopt on anything else.
std::optional<Level> parse_level(std::string_view name);

/// One key=value field of a structured record. Values are pre-rendered to
/// text at the call site (which only happens when the record is enabled).
struct Field {
  std::string key;
  std::string value;
  bool quoted = false;  ///< string values are quoted in the output line
};

namespace detail {
Field signed_field(std::string_view key, long long value);
Field unsigned_field(std::string_view key, unsigned long long value);
}  // namespace detail

// `F` is the intended spelling at call sites; the template covers every
// integer width without platform-dependent overload collisions.
Field F(std::string_view key, double value);
Field F(std::string_view key, bool value);
Field F(std::string_view key, std::string_view value);
Field F(std::string_view key, const char* value);

template <typename T>
  requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
Field F(std::string_view key, T value) {
  if constexpr (std::is_signed_v<T>) {
    return detail::signed_field(key, static_cast<long long>(value));
  } else {
    return detail::unsigned_field(key, static_cast<unsigned long long>(value));
  }
}

/// Destination for rendered log lines (each `line` includes the trailing
/// newline). Implementations need not lock: Logger serializes writes.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(std::string_view line) = 0;
};

/// Discards everything (the default sink).
class NullSink final : public Sink {
 public:
  void write(std::string_view) override {}
};

/// Writes to stderr, flushing per record so logs survive crashes.
class StderrSink final : public Sink {
 public:
  void write(std::string_view line) override;
};

/// Appends to a file opened at construction; no-op if the open failed.
class FileSink final : public Sink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  bool ok() const { return file_ != nullptr; }
  void write(std::string_view line) override;

 private:
  std::FILE* file_ = nullptr;
};

/// Captures rendered lines in memory; for tests.
class MemorySink final : public Sink {
 public:
  void write(std::string_view line) override;
  std::vector<std::string> lines() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

namespace detail {
/// The runtime level lives outside Logger so that the enabled check never
/// touches the (guarded) singleton. Constant-initialized: no init guard.
inline std::atomic<int>& runtime_level() {
  static std::atomic<int> level{static_cast<int>(Level::kInfo)};
  return level;
}
}  // namespace detail

/// Process-global logger. Leaky singleton: valid for the whole process
/// lifetime, so references cached by other translation units never dangle.
class Logger {
 public:
  static Logger& instance();

  /// The hot-path filter: one relaxed load + compare.
  static bool enabled(Level level) {
    return static_cast<int>(level) >=
           detail::runtime_level().load(std::memory_order_relaxed);
  }

  void set_level(Level level) {
    detail::runtime_level().store(static_cast<int>(level),
                                  std::memory_order_relaxed);
  }
  Level level() const {
    return static_cast<Level>(
        detail::runtime_level().load(std::memory_order_relaxed));
  }

  /// Installs a sink (shared: callers may keep the pointer to inspect a
  /// MemorySink). Null restores the default NullSink.
  void set_sink(std::shared_ptr<Sink> sink);

  /// Renders and emits one record. Called via the PLOS_LOG_* macros, which
  /// have already checked enabled(); calling it directly always emits.
  void write(Level level, std::string_view message,
             std::initializer_list<Field> fields);

  template <typename... Fs>
  void log(Level level, std::string_view message, const Fs&... fields) {
    write(level, message, {fields...});
  }

 private:
  Logger();

  std::mutex mutex_;
  std::shared_ptr<Sink> sink_;
};

}  // namespace plos::obs

// Numeric aliases usable in -DPLOS_LOG_LEVEL=… and #if comparisons.
#define PLOS_LOG_LEVEL_TRACE 0
#define PLOS_LOG_LEVEL_DEBUG 1
#define PLOS_LOG_LEVEL_INFO 2
#define PLOS_LOG_LEVEL_WARN 3
#define PLOS_LOG_LEVEL_ERROR 4
#define PLOS_LOG_LEVEL_OFF 5

#ifndef PLOS_LOG_LEVEL
#define PLOS_LOG_LEVEL PLOS_LOG_LEVEL_TRACE
#endif

#define PLOS_LOG_AT_LEVEL(level_, ...)                               \
  do {                                                               \
    if (::plos::obs::Logger::enabled(level_)) {                      \
      ::plos::obs::Logger::instance().log(level_, __VA_ARGS__);      \
    }                                                                \
  } while (0)

#if PLOS_LOG_LEVEL <= PLOS_LOG_LEVEL_TRACE
#define PLOS_LOG_TRACE(...) \
  PLOS_LOG_AT_LEVEL(::plos::obs::Level::kTrace, __VA_ARGS__)
#else
#define PLOS_LOG_TRACE(...) ((void)0)
#endif

#if PLOS_LOG_LEVEL <= PLOS_LOG_LEVEL_DEBUG
#define PLOS_LOG_DEBUG(...) \
  PLOS_LOG_AT_LEVEL(::plos::obs::Level::kDebug, __VA_ARGS__)
#else
#define PLOS_LOG_DEBUG(...) ((void)0)
#endif

#if PLOS_LOG_LEVEL <= PLOS_LOG_LEVEL_INFO
#define PLOS_LOG_INFO(...) \
  PLOS_LOG_AT_LEVEL(::plos::obs::Level::kInfo, __VA_ARGS__)
#else
#define PLOS_LOG_INFO(...) ((void)0)
#endif

#if PLOS_LOG_LEVEL <= PLOS_LOG_LEVEL_WARN
#define PLOS_LOG_WARN(...) \
  PLOS_LOG_AT_LEVEL(::plos::obs::Level::kWarn, __VA_ARGS__)
#else
#define PLOS_LOG_WARN(...) ((void)0)
#endif

#if PLOS_LOG_LEVEL <= PLOS_LOG_LEVEL_ERROR
#define PLOS_LOG_ERROR(...) \
  PLOS_LOG_AT_LEVEL(::plos::obs::Level::kError, __VA_ARGS__)
#else
#define PLOS_LOG_ERROR(...) ((void)0)
#endif
