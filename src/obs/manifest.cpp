#include "obs/manifest.hpp"

#include <cstdio>
#include <cstring>

#include "obs/json.hpp"

namespace plos::obs {

void fill_build_info(RunManifest& manifest) {
#ifdef __VERSION__
  manifest.compiler = __VERSION__;
#else
  manifest.compiler = "unknown";
#endif
#ifdef NDEBUG
  manifest.build_type = "release";
#else
  manifest.build_type = "debug";
#endif
}

namespace {

void append_string_map(std::string& out, const char* key,
                       const std::map<std::string, std::string>& values) {
  out += '"';
  out += key;
  out += "\":{";
  bool first = true;
  for (const auto& [k, v] : values) {
    if (!first) out += ',';
    first = false;
    out += json::escape(k);
    out += ':';
    out += json::escape(v);
  }
  out += '}';
}

void append_double_map(std::string& out, const char* key,
                       const std::map<std::string, double>& values) {
  out += '"';
  out += key;
  out += "\":{";
  bool first = true;
  for (const auto& [k, v] : values) {
    if (!first) out += ',';
    first = false;
    out += json::escape(k);
    out += ':';
    out += json::number(v);
  }
  out += '}';
}

std::string hash_hex(std::uint64_t hash) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

}  // namespace

std::string manifest_to_json(const RunManifest& manifest,
                             bool include_timing) {
  std::string out = "{";
  out += "\"tool\":";
  out += json::escape(manifest.tool);
  out += ",\"schema_version\":";
  out += std::to_string(manifest.schema_version);
  out += ",\"build\":{\"compiler\":";
  out += json::escape(manifest.compiler);
  out += ",\"build_type\":";
  out += json::escape(manifest.build_type);
  out += "},\"seed\":";
  out += std::to_string(manifest.seed);

  const DatasetFingerprint& d = manifest.dataset;
  out += ",\"dataset\":{\"name\":";
  out += json::escape(d.name);
  out += ",\"users\":";
  out += std::to_string(d.users);
  out += ",\"providers\":";
  out += std::to_string(d.providers);
  out += ",\"samples\":";
  out += std::to_string(d.samples);
  out += ",\"dim\":";
  out += std::to_string(d.dim);
  out += ",\"labeled_fraction\":";
  out += json::number(d.labeled_fraction);
  out += ",\"content_hash\":";
  out += json::escape(hash_hex(d.content_hash));
  out += "},";

  append_string_map(out, "options", manifest.options);
  out += ',';
  append_string_map(out, "fault", manifest.fault);
  out += ',';
  append_double_map(out, "results", manifest.results);

  out += ",\"watchdog\":{\"verdict\":";
  out += json::escape(manifest.watchdog_verdict);
  out += ",\"violations\":";
  out += std::to_string(manifest.watchdog_violations);
  out += ",\"first_violation\":";
  out += json::escape(manifest.watchdog_first_violation);
  out += '}';

  if (include_timing) {
    out += ",\"timing\":{\"threads\":";
    out += std::to_string(manifest.threads);
    out += ",\"wall_seconds\":";
    out += json::number(manifest.wall_seconds);
    for (const auto& [k, v] : manifest.timing) {
      out += ',';
      out += json::escape(k);
      out += ':';
      out += json::number(v);
    }
    out += '}';
  }
  out += '}';
  return out;
}

bool write_manifest(const RunManifest& manifest, const std::string& path,
                    bool include_timing) {
  const std::string text = manifest_to_json(manifest, include_timing) + "\n";
  if (path == "-") {
    return std::fwrite(text.data(), 1, text.size(), stdout) == text.size();
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size();
  return std::fclose(file) == 0 && ok;
}

void Fnv1a::add_bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state_ ^= bytes[i];
    state_ *= 1099511628211ull;  // FNV prime
  }
}

void Fnv1a::add_u64(std::uint64_t value) { add_bytes(&value, sizeof(value)); }

void Fnv1a::add_double(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  add_u64(bits);
}

}  // namespace plos::obs
