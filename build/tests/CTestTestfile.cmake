# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_qp[1]_include.cmake")
include("/root/repo/build/tests/test_svm[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_sensing[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_cutting_plane[1]_include.cmake")
include("/root/repo/build/tests/test_centralized_plos[1]_include.cmake")
include("/root/repo/build/tests/test_distributed_plos[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_evaluation[1]_include.cmake")
include("/root/repo/build/tests/test_cross_validation[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_logistic_plos[1]_include.cmake")
include("/root/repo/build/tests/test_model_io[1]_include.cmake")
include("/root/repo/build/tests/test_async_distributed[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
