file(REMOVE_RECURSE
  "CMakeFiles/test_cutting_plane.dir/test_cutting_plane.cpp.o"
  "CMakeFiles/test_cutting_plane.dir/test_cutting_plane.cpp.o.d"
  "test_cutting_plane"
  "test_cutting_plane.pdb"
  "test_cutting_plane[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cutting_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
