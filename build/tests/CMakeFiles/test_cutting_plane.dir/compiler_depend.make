# Empty compiler generated dependencies file for test_cutting_plane.
# This may be replaced when dependencies are built.
