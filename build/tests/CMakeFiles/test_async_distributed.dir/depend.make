# Empty dependencies file for test_async_distributed.
# This may be replaced when dependencies are built.
