file(REMOVE_RECURSE
  "CMakeFiles/test_async_distributed.dir/test_async_distributed.cpp.o"
  "CMakeFiles/test_async_distributed.dir/test_async_distributed.cpp.o.d"
  "test_async_distributed"
  "test_async_distributed.pdb"
  "test_async_distributed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
