file(REMOVE_RECURSE
  "CMakeFiles/test_centralized_plos.dir/test_centralized_plos.cpp.o"
  "CMakeFiles/test_centralized_plos.dir/test_centralized_plos.cpp.o.d"
  "test_centralized_plos"
  "test_centralized_plos.pdb"
  "test_centralized_plos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_centralized_plos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
