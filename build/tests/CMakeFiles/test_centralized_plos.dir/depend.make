# Empty dependencies file for test_centralized_plos.
# This may be replaced when dependencies are built.
