file(REMOVE_RECURSE
  "CMakeFiles/test_logistic_plos.dir/test_logistic_plos.cpp.o"
  "CMakeFiles/test_logistic_plos.dir/test_logistic_plos.cpp.o.d"
  "test_logistic_plos"
  "test_logistic_plos.pdb"
  "test_logistic_plos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logistic_plos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
