# Empty compiler generated dependencies file for test_logistic_plos.
# This may be replaced when dependencies are built.
