# Empty dependencies file for test_distributed_plos.
# This may be replaced when dependencies are built.
