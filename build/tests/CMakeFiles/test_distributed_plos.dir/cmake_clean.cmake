file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_plos.dir/test_distributed_plos.cpp.o"
  "CMakeFiles/test_distributed_plos.dir/test_distributed_plos.cpp.o.d"
  "test_distributed_plos"
  "test_distributed_plos.pdb"
  "test_distributed_plos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_plos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
