file(REMOVE_RECURSE
  "CMakeFiles/plos_run.dir/plos_run.cpp.o"
  "CMakeFiles/plos_run.dir/plos_run.cpp.o.d"
  "plos_run"
  "plos_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plos_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
