# Empty dependencies file for plos_run.
# This may be replaced when dependencies are built.
