file(REMOVE_RECURSE
  "CMakeFiles/cold_start_user.dir/cold_start_user.cpp.o"
  "CMakeFiles/cold_start_user.dir/cold_start_user.cpp.o.d"
  "cold_start_user"
  "cold_start_user.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_start_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
