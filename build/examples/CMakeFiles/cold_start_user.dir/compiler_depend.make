# Empty compiler generated dependencies file for cold_start_user.
# This may be replaced when dependencies are built.
