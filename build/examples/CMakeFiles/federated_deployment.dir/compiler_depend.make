# Empty compiler generated dependencies file for federated_deployment.
# This may be replaced when dependencies are built.
