file(REMOVE_RECURSE
  "CMakeFiles/federated_deployment.dir/federated_deployment.cpp.o"
  "CMakeFiles/federated_deployment.dir/federated_deployment.cpp.o.d"
  "federated_deployment"
  "federated_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
