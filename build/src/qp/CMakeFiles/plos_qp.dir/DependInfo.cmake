
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qp/box_qp.cpp" "src/qp/CMakeFiles/plos_qp.dir/box_qp.cpp.o" "gcc" "src/qp/CMakeFiles/plos_qp.dir/box_qp.cpp.o.d"
  "/root/repo/src/qp/capped_simplex_qp.cpp" "src/qp/CMakeFiles/plos_qp.dir/capped_simplex_qp.cpp.o" "gcc" "src/qp/CMakeFiles/plos_qp.dir/capped_simplex_qp.cpp.o.d"
  "/root/repo/src/qp/projection.cpp" "src/qp/CMakeFiles/plos_qp.dir/projection.cpp.o" "gcc" "src/qp/CMakeFiles/plos_qp.dir/projection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/plos_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
