file(REMOVE_RECURSE
  "CMakeFiles/plos_qp.dir/box_qp.cpp.o"
  "CMakeFiles/plos_qp.dir/box_qp.cpp.o.d"
  "CMakeFiles/plos_qp.dir/capped_simplex_qp.cpp.o"
  "CMakeFiles/plos_qp.dir/capped_simplex_qp.cpp.o.d"
  "CMakeFiles/plos_qp.dir/projection.cpp.o"
  "CMakeFiles/plos_qp.dir/projection.cpp.o.d"
  "libplos_qp.a"
  "libplos_qp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plos_qp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
