# Empty dependencies file for plos_qp.
# This may be replaced when dependencies are built.
