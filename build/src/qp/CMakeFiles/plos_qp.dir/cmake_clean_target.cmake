file(REMOVE_RECURSE
  "libplos_qp.a"
)
