# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("linalg")
subdirs("rng")
subdirs("qp")
subdirs("opt")
subdirs("svm")
subdirs("cluster")
subdirs("features")
subdirs("data")
subdirs("sensing")
subdirs("net")
subdirs("core")
