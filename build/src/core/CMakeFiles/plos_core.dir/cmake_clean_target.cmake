file(REMOVE_RECURSE
  "libplos_core.a"
)
