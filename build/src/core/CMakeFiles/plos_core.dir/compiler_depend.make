# Empty compiler generated dependencies file for plos_core.
# This may be replaced when dependencies are built.
