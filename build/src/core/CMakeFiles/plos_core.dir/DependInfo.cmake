
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/plos_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/plos_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/centralized_plos.cpp" "src/core/CMakeFiles/plos_core.dir/centralized_plos.cpp.o" "gcc" "src/core/CMakeFiles/plos_core.dir/centralized_plos.cpp.o.d"
  "/root/repo/src/core/cross_validation.cpp" "src/core/CMakeFiles/plos_core.dir/cross_validation.cpp.o" "gcc" "src/core/CMakeFiles/plos_core.dir/cross_validation.cpp.o.d"
  "/root/repo/src/core/cutting_plane.cpp" "src/core/CMakeFiles/plos_core.dir/cutting_plane.cpp.o" "gcc" "src/core/CMakeFiles/plos_core.dir/cutting_plane.cpp.o.d"
  "/root/repo/src/core/distributed_plos.cpp" "src/core/CMakeFiles/plos_core.dir/distributed_plos.cpp.o" "gcc" "src/core/CMakeFiles/plos_core.dir/distributed_plos.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/plos_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/plos_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/logistic_plos.cpp" "src/core/CMakeFiles/plos_core.dir/logistic_plos.cpp.o" "gcc" "src/core/CMakeFiles/plos_core.dir/logistic_plos.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/plos_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/plos_core.dir/model.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/plos_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/plos_core.dir/model_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/plos_data.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/CMakeFiles/plos_qp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/plos_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/svm/CMakeFiles/plos_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/plos_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/plos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/plos_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/plos_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
