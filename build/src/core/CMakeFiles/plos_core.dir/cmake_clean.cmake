file(REMOVE_RECURSE
  "CMakeFiles/plos_core.dir/baselines.cpp.o"
  "CMakeFiles/plos_core.dir/baselines.cpp.o.d"
  "CMakeFiles/plos_core.dir/centralized_plos.cpp.o"
  "CMakeFiles/plos_core.dir/centralized_plos.cpp.o.d"
  "CMakeFiles/plos_core.dir/cross_validation.cpp.o"
  "CMakeFiles/plos_core.dir/cross_validation.cpp.o.d"
  "CMakeFiles/plos_core.dir/cutting_plane.cpp.o"
  "CMakeFiles/plos_core.dir/cutting_plane.cpp.o.d"
  "CMakeFiles/plos_core.dir/distributed_plos.cpp.o"
  "CMakeFiles/plos_core.dir/distributed_plos.cpp.o.d"
  "CMakeFiles/plos_core.dir/evaluation.cpp.o"
  "CMakeFiles/plos_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/plos_core.dir/logistic_plos.cpp.o"
  "CMakeFiles/plos_core.dir/logistic_plos.cpp.o.d"
  "CMakeFiles/plos_core.dir/model.cpp.o"
  "CMakeFiles/plos_core.dir/model.cpp.o.d"
  "CMakeFiles/plos_core.dir/model_io.cpp.o"
  "CMakeFiles/plos_core.dir/model_io.cpp.o.d"
  "libplos_core.a"
  "libplos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
