# Empty compiler generated dependencies file for plos_linalg.
# This may be replaced when dependencies are built.
