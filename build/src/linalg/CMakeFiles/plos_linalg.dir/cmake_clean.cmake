file(REMOVE_RECURSE
  "CMakeFiles/plos_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/plos_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/plos_linalg.dir/eigen.cpp.o"
  "CMakeFiles/plos_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/plos_linalg.dir/matrix.cpp.o"
  "CMakeFiles/plos_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/plos_linalg.dir/vector.cpp.o"
  "CMakeFiles/plos_linalg.dir/vector.cpp.o.d"
  "libplos_linalg.a"
  "libplos_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plos_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
