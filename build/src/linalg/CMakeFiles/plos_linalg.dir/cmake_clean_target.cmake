file(REMOVE_RECURSE
  "libplos_linalg.a"
)
