file(REMOVE_RECURSE
  "libplos_features.a"
)
