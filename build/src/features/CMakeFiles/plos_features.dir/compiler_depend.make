# Empty compiler generated dependencies file for plos_features.
# This may be replaced when dependencies are built.
