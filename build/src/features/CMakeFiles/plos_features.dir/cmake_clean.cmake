file(REMOVE_RECURSE
  "CMakeFiles/plos_features.dir/extractor.cpp.o"
  "CMakeFiles/plos_features.dir/extractor.cpp.o.d"
  "CMakeFiles/plos_features.dir/stats.cpp.o"
  "CMakeFiles/plos_features.dir/stats.cpp.o.d"
  "CMakeFiles/plos_features.dir/window.cpp.o"
  "CMakeFiles/plos_features.dir/window.cpp.o.d"
  "libplos_features.a"
  "libplos_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plos_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
