file(REMOVE_RECURSE
  "libplos_common.a"
)
