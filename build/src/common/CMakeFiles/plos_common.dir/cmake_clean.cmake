file(REMOVE_RECURSE
  "CMakeFiles/plos_common.dir/assert.cpp.o"
  "CMakeFiles/plos_common.dir/assert.cpp.o.d"
  "libplos_common.a"
  "libplos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
