# Empty dependencies file for plos_common.
# This may be replaced when dependencies are built.
