file(REMOVE_RECURSE
  "CMakeFiles/plos_rng.dir/engine.cpp.o"
  "CMakeFiles/plos_rng.dir/engine.cpp.o.d"
  "CMakeFiles/plos_rng.dir/multivariate_normal.cpp.o"
  "CMakeFiles/plos_rng.dir/multivariate_normal.cpp.o.d"
  "libplos_rng.a"
  "libplos_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plos_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
