file(REMOVE_RECURSE
  "libplos_rng.a"
)
