# Empty dependencies file for plos_rng.
# This may be replaced when dependencies are built.
