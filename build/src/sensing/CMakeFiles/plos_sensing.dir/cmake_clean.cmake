file(REMOVE_RECURSE
  "CMakeFiles/plos_sensing.dir/body_sensor.cpp.o"
  "CMakeFiles/plos_sensing.dir/body_sensor.cpp.o.d"
  "CMakeFiles/plos_sensing.dir/har.cpp.o"
  "CMakeFiles/plos_sensing.dir/har.cpp.o.d"
  "CMakeFiles/plos_sensing.dir/rotation3d.cpp.o"
  "CMakeFiles/plos_sensing.dir/rotation3d.cpp.o.d"
  "libplos_sensing.a"
  "libplos_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plos_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
