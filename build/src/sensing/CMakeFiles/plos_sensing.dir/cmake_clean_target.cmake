file(REMOVE_RECURSE
  "libplos_sensing.a"
)
