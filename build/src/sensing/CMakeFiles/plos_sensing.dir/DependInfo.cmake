
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensing/body_sensor.cpp" "src/sensing/CMakeFiles/plos_sensing.dir/body_sensor.cpp.o" "gcc" "src/sensing/CMakeFiles/plos_sensing.dir/body_sensor.cpp.o.d"
  "/root/repo/src/sensing/har.cpp" "src/sensing/CMakeFiles/plos_sensing.dir/har.cpp.o" "gcc" "src/sensing/CMakeFiles/plos_sensing.dir/har.cpp.o.d"
  "/root/repo/src/sensing/rotation3d.cpp" "src/sensing/CMakeFiles/plos_sensing.dir/rotation3d.cpp.o" "gcc" "src/sensing/CMakeFiles/plos_sensing.dir/rotation3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/plos_data.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/plos_features.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/plos_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/plos_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
