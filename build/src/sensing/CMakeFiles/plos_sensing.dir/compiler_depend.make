# Empty compiler generated dependencies file for plos_sensing.
# This may be replaced when dependencies are built.
