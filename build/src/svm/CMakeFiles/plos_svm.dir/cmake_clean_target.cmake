file(REMOVE_RECURSE
  "libplos_svm.a"
)
