file(REMOVE_RECURSE
  "CMakeFiles/plos_svm.dir/linear_svm.cpp.o"
  "CMakeFiles/plos_svm.dir/linear_svm.cpp.o.d"
  "libplos_svm.a"
  "libplos_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plos_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
