# Empty compiler generated dependencies file for plos_svm.
# This may be replaced when dependencies are built.
