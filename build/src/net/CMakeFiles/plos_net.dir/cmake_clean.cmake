file(REMOVE_RECURSE
  "CMakeFiles/plos_net.dir/serialize.cpp.o"
  "CMakeFiles/plos_net.dir/serialize.cpp.o.d"
  "CMakeFiles/plos_net.dir/simnet.cpp.o"
  "CMakeFiles/plos_net.dir/simnet.cpp.o.d"
  "libplos_net.a"
  "libplos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
