# Empty compiler generated dependencies file for plos_net.
# This may be replaced when dependencies are built.
