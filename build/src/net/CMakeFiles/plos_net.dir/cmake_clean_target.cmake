file(REMOVE_RECURSE
  "libplos_net.a"
)
