file(REMOVE_RECURSE
  "libplos_cluster.a"
)
