file(REMOVE_RECURSE
  "CMakeFiles/plos_cluster.dir/hungarian.cpp.o"
  "CMakeFiles/plos_cluster.dir/hungarian.cpp.o.d"
  "CMakeFiles/plos_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/plos_cluster.dir/kmeans.cpp.o.d"
  "CMakeFiles/plos_cluster.dir/lsh.cpp.o"
  "CMakeFiles/plos_cluster.dir/lsh.cpp.o.d"
  "CMakeFiles/plos_cluster.dir/spectral.cpp.o"
  "CMakeFiles/plos_cluster.dir/spectral.cpp.o.d"
  "libplos_cluster.a"
  "libplos_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plos_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
