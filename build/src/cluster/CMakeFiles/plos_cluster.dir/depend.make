# Empty dependencies file for plos_cluster.
# This may be replaced when dependencies are built.
