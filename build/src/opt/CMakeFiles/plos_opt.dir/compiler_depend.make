# Empty compiler generated dependencies file for plos_opt.
# This may be replaced when dependencies are built.
