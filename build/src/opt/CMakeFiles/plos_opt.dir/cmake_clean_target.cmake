file(REMOVE_RECURSE
  "libplos_opt.a"
)
