file(REMOVE_RECURSE
  "CMakeFiles/plos_opt.dir/lbfgs.cpp.o"
  "CMakeFiles/plos_opt.dir/lbfgs.cpp.o.d"
  "libplos_opt.a"
  "libplos_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plos_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
