file(REMOVE_RECURSE
  "libplos_data.a"
)
