file(REMOVE_RECURSE
  "CMakeFiles/plos_data.dir/dataset.cpp.o"
  "CMakeFiles/plos_data.dir/dataset.cpp.o.d"
  "CMakeFiles/plos_data.dir/labeling.cpp.o"
  "CMakeFiles/plos_data.dir/labeling.cpp.o.d"
  "CMakeFiles/plos_data.dir/synthetic.cpp.o"
  "CMakeFiles/plos_data.dir/synthetic.cpp.o.d"
  "CMakeFiles/plos_data.dir/transform.cpp.o"
  "CMakeFiles/plos_data.dir/transform.cpp.o.d"
  "libplos_data.a"
  "libplos_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plos_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
