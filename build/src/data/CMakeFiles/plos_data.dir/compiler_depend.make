# Empty compiler generated dependencies file for plos_data.
# This may be replaced when dependencies are built.
