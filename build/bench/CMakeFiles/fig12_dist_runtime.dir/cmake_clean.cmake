file(REMOVE_RECURSE
  "CMakeFiles/fig12_dist_runtime.dir/fig12_dist_runtime.cpp.o"
  "CMakeFiles/fig12_dist_runtime.dir/fig12_dist_runtime.cpp.o.d"
  "fig12_dist_runtime"
  "fig12_dist_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_dist_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
