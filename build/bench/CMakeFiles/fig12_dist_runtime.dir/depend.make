# Empty dependencies file for fig12_dist_runtime.
# This may be replaced when dependencies are built.
