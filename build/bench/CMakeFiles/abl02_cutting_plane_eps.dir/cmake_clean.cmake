file(REMOVE_RECURSE
  "CMakeFiles/abl02_cutting_plane_eps.dir/abl02_cutting_plane_eps.cpp.o"
  "CMakeFiles/abl02_cutting_plane_eps.dir/abl02_cutting_plane_eps.cpp.o.d"
  "abl02_cutting_plane_eps"
  "abl02_cutting_plane_eps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl02_cutting_plane_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
