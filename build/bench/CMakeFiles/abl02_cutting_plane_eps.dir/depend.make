# Empty dependencies file for abl02_cutting_plane_eps.
# This may be replaced when dependencies are built.
