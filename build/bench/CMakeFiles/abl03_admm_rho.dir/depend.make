# Empty dependencies file for abl03_admm_rho.
# This may be replaced when dependencies are built.
