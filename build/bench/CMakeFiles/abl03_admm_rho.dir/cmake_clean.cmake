file(REMOVE_RECURSE
  "CMakeFiles/abl03_admm_rho.dir/abl03_admm_rho.cpp.o"
  "CMakeFiles/abl03_admm_rho.dir/abl03_admm_rho.cpp.o.d"
  "abl03_admm_rho"
  "abl03_admm_rho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl03_admm_rho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
