file(REMOVE_RECURSE
  "CMakeFiles/abl01_unlabeled_term.dir/abl01_unlabeled_term.cpp.o"
  "CMakeFiles/abl01_unlabeled_term.dir/abl01_unlabeled_term.cpp.o.d"
  "abl01_unlabeled_term"
  "abl01_unlabeled_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_unlabeled_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
