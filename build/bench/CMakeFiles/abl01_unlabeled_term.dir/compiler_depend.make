# Empty compiler generated dependencies file for abl01_unlabeled_term.
# This may be replaced when dependencies are built.
