file(REMOVE_RECURSE
  "CMakeFiles/fig07_har_lambda.dir/fig07_har_lambda.cpp.o"
  "CMakeFiles/fig07_har_lambda.dir/fig07_har_lambda.cpp.o.d"
  "fig07_har_lambda"
  "fig07_har_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_har_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
