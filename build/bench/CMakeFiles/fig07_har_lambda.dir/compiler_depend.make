# Empty compiler generated dependencies file for fig07_har_lambda.
# This may be replaced when dependencies are built.
