# Empty dependencies file for fig13_dist_message_overhead.
# This may be replaced when dependencies are built.
