file(REMOVE_RECURSE
  "CMakeFiles/fig13_dist_message_overhead.dir/fig13_dist_message_overhead.cpp.o"
  "CMakeFiles/fig13_dist_message_overhead.dir/fig13_dist_message_overhead.cpp.o.d"
  "fig13_dist_message_overhead"
  "fig13_dist_message_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_dist_message_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
