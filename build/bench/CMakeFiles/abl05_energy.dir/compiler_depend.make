# Empty compiler generated dependencies file for abl05_energy.
# This may be replaced when dependencies are built.
