file(REMOVE_RECURSE
  "CMakeFiles/abl05_energy.dir/abl05_energy.cpp.o"
  "CMakeFiles/abl05_energy.dir/abl05_energy.cpp.o.d"
  "abl05_energy"
  "abl05_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl05_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
