
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl04_qp_micro.cpp" "bench/CMakeFiles/abl04_qp_micro.dir/abl04_qp_micro.cpp.o" "gcc" "bench/CMakeFiles/abl04_qp_micro.dir/abl04_qp_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/plos_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/plos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/CMakeFiles/plos_qp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/plos_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/svm/CMakeFiles/plos_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/plos_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/plos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/plos_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/plos_data.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/plos_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/plos_features.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/plos_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
