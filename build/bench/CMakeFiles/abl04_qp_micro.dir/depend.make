# Empty dependencies file for abl04_qp_micro.
# This may be replaced when dependencies are built.
