file(REMOVE_RECURSE
  "CMakeFiles/abl04_qp_micro.dir/abl04_qp_micro.cpp.o"
  "CMakeFiles/abl04_qp_micro.dir/abl04_qp_micro.cpp.o.d"
  "abl04_qp_micro"
  "abl04_qp_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl04_qp_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
