file(REMOVE_RECURSE
  "CMakeFiles/abl07_async_participation.dir/abl07_async_participation.cpp.o"
  "CMakeFiles/abl07_async_participation.dir/abl07_async_participation.cpp.o.d"
  "abl07_async_participation"
  "abl07_async_participation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl07_async_participation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
