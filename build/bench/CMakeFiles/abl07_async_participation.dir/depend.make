# Empty dependencies file for abl07_async_participation.
# This may be replaced when dependencies are built.
