file(REMOVE_RECURSE
  "CMakeFiles/fig04_body_training_rate.dir/fig04_body_training_rate.cpp.o"
  "CMakeFiles/fig04_body_training_rate.dir/fig04_body_training_rate.cpp.o.d"
  "fig04_body_training_rate"
  "fig04_body_training_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_body_training_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
