# Empty compiler generated dependencies file for fig04_body_training_rate.
# This may be replaced when dependencies are built.
