# Empty compiler generated dependencies file for abl06_loss_functions.
# This may be replaced when dependencies are built.
