file(REMOVE_RECURSE
  "CMakeFiles/abl06_loss_functions.dir/abl06_loss_functions.cpp.o"
  "CMakeFiles/abl06_loss_functions.dir/abl06_loss_functions.cpp.o.d"
  "abl06_loss_functions"
  "abl06_loss_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl06_loss_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
