file(REMOVE_RECURSE
  "CMakeFiles/plos_bench_support.dir/bench_support.cpp.o"
  "CMakeFiles/plos_bench_support.dir/bench_support.cpp.o.d"
  "libplos_bench_support.a"
  "libplos_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plos_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
