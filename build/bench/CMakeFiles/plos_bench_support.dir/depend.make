# Empty dependencies file for plos_bench_support.
# This may be replaced when dependencies are built.
