file(REMOVE_RECURSE
  "libplos_bench_support.a"
)
