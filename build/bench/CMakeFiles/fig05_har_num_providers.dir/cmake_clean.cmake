file(REMOVE_RECURSE
  "CMakeFiles/fig05_har_num_providers.dir/fig05_har_num_providers.cpp.o"
  "CMakeFiles/fig05_har_num_providers.dir/fig05_har_num_providers.cpp.o.d"
  "fig05_har_num_providers"
  "fig05_har_num_providers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_har_num_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
