# Empty dependencies file for fig05_har_num_providers.
# This may be replaced when dependencies are built.
