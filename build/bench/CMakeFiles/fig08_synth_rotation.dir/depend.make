# Empty dependencies file for fig08_synth_rotation.
# This may be replaced when dependencies are built.
