file(REMOVE_RECURSE
  "CMakeFiles/fig08_synth_rotation.dir/fig08_synth_rotation.cpp.o"
  "CMakeFiles/fig08_synth_rotation.dir/fig08_synth_rotation.cpp.o.d"
  "fig08_synth_rotation"
  "fig08_synth_rotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_synth_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
