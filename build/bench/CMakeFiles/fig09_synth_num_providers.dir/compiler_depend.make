# Empty compiler generated dependencies file for fig09_synth_num_providers.
# This may be replaced when dependencies are built.
