file(REMOVE_RECURSE
  "CMakeFiles/fig09_synth_num_providers.dir/fig09_synth_num_providers.cpp.o"
  "CMakeFiles/fig09_synth_num_providers.dir/fig09_synth_num_providers.cpp.o.d"
  "fig09_synth_num_providers"
  "fig09_synth_num_providers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_synth_num_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
