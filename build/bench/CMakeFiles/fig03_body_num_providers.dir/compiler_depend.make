# Empty compiler generated dependencies file for fig03_body_num_providers.
# This may be replaced when dependencies are built.
