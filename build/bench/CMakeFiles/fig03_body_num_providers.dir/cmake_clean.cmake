file(REMOVE_RECURSE
  "CMakeFiles/fig03_body_num_providers.dir/fig03_body_num_providers.cpp.o"
  "CMakeFiles/fig03_body_num_providers.dir/fig03_body_num_providers.cpp.o.d"
  "fig03_body_num_providers"
  "fig03_body_num_providers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_body_num_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
