file(REMOVE_RECURSE
  "CMakeFiles/fig10_synth_training_rate.dir/fig10_synth_training_rate.cpp.o"
  "CMakeFiles/fig10_synth_training_rate.dir/fig10_synth_training_rate.cpp.o.d"
  "fig10_synth_training_rate"
  "fig10_synth_training_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_synth_training_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
