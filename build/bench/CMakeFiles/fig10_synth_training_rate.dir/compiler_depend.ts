# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig10_synth_training_rate.
