# Empty compiler generated dependencies file for fig10_synth_training_rate.
# This may be replaced when dependencies are built.
