# Empty dependencies file for fig06_har_training_rate.
# This may be replaced when dependencies are built.
