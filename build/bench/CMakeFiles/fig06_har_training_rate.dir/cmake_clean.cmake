file(REMOVE_RECURSE
  "CMakeFiles/fig06_har_training_rate.dir/fig06_har_training_rate.cpp.o"
  "CMakeFiles/fig06_har_training_rate.dir/fig06_har_training_rate.cpp.o.d"
  "fig06_har_training_rate"
  "fig06_har_training_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_har_training_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
